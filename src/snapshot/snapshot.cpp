#include "snapshot/snapshot.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "io/vfs.hpp"

namespace planaria::snapshot {

namespace {

constexpr char kMagic[8] = {'P', 'L', 'N', 'S', 'N', 'A', 'P', '1'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 4;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

std::uint64_t Reader::get(int bytes) {
  if (size_ - pos_ < static_cast<std::size_t>(bytes)) {
    throw SnapshotError("truncated payload (wanted " + std::to_string(bytes) +
                        " bytes, " + std::to_string(size_ - pos_) + " left)");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += static_cast<std::size_t>(bytes);
  return v;
}

bool Reader::b() {
  const std::uint8_t v = u8();
  if (v > 1) throw SnapshotError("bool field holds " + std::to_string(v));
  return v == 1;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint32_t n = u32();
  if (remaining() < n) throw SnapshotError("truncated string");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

void Reader::expect_tag(std::uint32_t expected) {
  const std::uint32_t got = u32();
  if (got != expected) {
    throw SnapshotError("section tag mismatch (got 0x" +
                        std::to_string(got) + ", expected 0x" +
                        std::to_string(expected) + ")");
  }
}

void Reader::require_end() const {
  if (!at_end()) {
    throw SnapshotError(std::to_string(remaining()) +
                        " unread bytes after decode");
  }
}

void Writer::end_section(std::size_t token) {
  if (token < 8 || token > buf_.size()) {
    throw SnapshotError("end_section token does not match a begin_section");
  }
  const std::uint64_t len = buf_.size() - token;
  for (int i = 0; i < 8; ++i) {
    buf_[token - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
  }
}

std::uint64_t Reader::enter_section(std::uint32_t expected) {
  expect_tag(expected);
  const std::uint64_t len = u64();
  if (len > remaining()) {
    throw SnapshotError("section length " + std::to_string(len) +
                        " exceeds the " + std::to_string(remaining()) +
                        " bytes remaining");
  }
  return len;
}

void Reader::skip(std::uint64_t bytes) {
  if (bytes > remaining()) {
    throw SnapshotError("skip past end of payload");
  }
  pos_ += static_cast<std::size_t>(bytes);
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& payload) {
  Writer header;
  for (char c : kMagic) header.u8(static_cast<std::uint8_t>(c));
  header.u32(kFormatVersion);
  header.u64(payload.size());
  header.u32(crc32(payload.data(), payload.size()));

  // The VFS supplies the durability discipline (tmp -> fsync -> rename ->
  // directory fsync) and the storage-fault hooks; this layer only frames the
  // envelope. IoError is translated so snapshot callers keep a single
  // exception type.
  try {
    const auto& h = header.buffer();
    io::write_file_durable(path, {io::ByteSpan{h.data(), h.size()},
                                  io::ByteSpan{payload.data(), payload.size()}});
  } catch (const io::IoError& e) {
    throw SnapshotError(e.what());
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::vector<std::uint8_t> image;
  try {
    image = io::read_file(path);
  } catch (const io::IoError& e) {
    throw SnapshotError(e.what());
  }

  if (image.size() < kHeaderBytes) {
    throw SnapshotError(path + ": shorter than the envelope header");
  }
  if (std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0) {
    throw SnapshotError(path + ": bad magic");
  }
  Reader hr(image.data() + sizeof(kMagic), kHeaderBytes - sizeof(kMagic));
  const std::uint32_t version = hr.u32();
  if (version != kFormatVersion) {
    throw SnapshotError(path + ": format version " + std::to_string(version) +
                        " (this build reads " +
                        std::to_string(kFormatVersion) + ")");
  }
  const std::uint64_t length = hr.u64();
  const std::uint32_t expected_crc = hr.u32();

  // The length field is validated against the bytes actually present (the
  // whole-file read already bounded the allocation by the real file size, so
  // a corrupt length is a precise error, not a huge alloc).
  if (image.size() - kHeaderBytes != length) {
    throw SnapshotError(path + ": payload length field disagrees with file size");
  }
  std::vector<std::uint8_t> payload(image.begin() + kHeaderBytes, image.end());
  if (crc32(payload.data(), payload.size()) != expected_crc) {
    throw SnapshotError(path + ": CRC mismatch");
  }
  return payload;
}

}  // namespace planaria::snapshot
