#include "fault/fault.hpp"

#include <array>
#include <stdexcept>
#include <string>

namespace planaria::fault {

const char* fault_class_name(FaultClass fault_class) {
  switch (fault_class) {
    case FaultClass::kTraceCorruption: return "trace-corruption";
    case FaultClass::kSlpPatternFlip: return "slp-pattern-flip";
    case FaultClass::kTlpPatternFlip: return "tlp-pattern-flip";
    case FaultClass::kPrefetchDrop: return "prefetch-drop";
    case FaultClass::kPrefetchDelay: return "prefetch-delay";
    case FaultClass::kDramStall: return "dram-stall";
    case FaultClass::kCount: break;
  }
  return "unknown";
}

bool FaultPlan::any_enabled() const {
  for (double r : rate) {
    if (r > 0.0) return true;
  }
  return false;
}

void FaultPlan::validate() const {
  for (int c = 0; c < kFaultClassCount; ++c) {
    if (rate[c] < 0.0 || rate[c] > 1.0) {
      throw std::invalid_argument(
          std::string("fault plan: rate for ") +
          fault_class_name(static_cast<FaultClass>(c)) +
          " must be within [0, 1]");
    }
  }
  if (enabled(FaultClass::kDramStall) && dram_stall_cycles == 0) {
    throw std::invalid_argument(
        "fault plan: dram_stall_cycles must be positive when armed");
  }
  if (enabled(FaultClass::kPrefetchDelay) && prefetch_delay_cycles == 0) {
    throw std::invalid_argument(
        "fault plan: prefetch_delay_cycles must be positive when armed");
  }
}

FaultPlan FaultPlan::single(FaultClass fault_class, double rate,
                            std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.rate[static_cast<int>(fault_class)] = rate;
  return plan;
}

FaultPlan FaultPlan::for_session(std::uint64_t session_id) const {
  FaultPlan derived = *this;
  // splitmix64 finalizer over (seed, id). The +1 keeps session 0 from
  // degenerating to the fleet seed itself.
  std::uint64_t z = seed ^ ((session_id + 1) * 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  derived.seed = z ^ (z >> 31);
  return derived;
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t stream)
    : plan_(plan) {
  plan_.validate();
  // Distinct 64-bit preseeds per (stream, class, decision|aux); the Rng's
  // splitmix expansion decorrelates adjacent preseeds.
  const std::uint64_t base = plan_.seed ^ (stream * 0x9E3779B97F4A7C15ull);
  for (int c = 0; c < kFaultClassCount; ++c) {
    decision_[c] = Rng(base + static_cast<std::uint64_t>(2 * c + 1));
    aux_[c] = Rng(base + static_cast<std::uint64_t>(2 * c + 2));
  }
}

bool FaultInjector::roll(FaultClass fault_class) {
  const int c = static_cast<int>(fault_class);
  const double rate = plan_.rate[c];
  if (rate <= 0.0) return false;  // disabled classes consume no randomness
  return decision_[c].chance(rate);
}

void FaultInjector::save_state(snapshot::Writer& w) const {
  w.tag(snapshot::tag4("FLT0"));
  for (int c = 0; c < kFaultClassCount; ++c) {
    for (std::uint64_t word : decision_[c].state()) w.u64(word);
    for (std::uint64_t word : aux_[c].state()) w.u64(word);
    w.u64(injected_[c]);
  }
}

void FaultInjector::load_state(snapshot::Reader& r) {
  r.expect_tag(snapshot::tag4("FLT0"));
  for (int c = 0; c < kFaultClassCount; ++c) {
    std::array<std::uint64_t, 4> state{};
    for (std::uint64_t& word : state) word = r.u64();
    decision_[c].set_state(state);
    for (std::uint64_t& word : state) word = r.u64();
    aux_[c].set_state(state);
    injected_[c] = r.u64();
  }
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (std::uint64_t n : injected_) total += n;
  return total;
}

}  // namespace planaria::fault
