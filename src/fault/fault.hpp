// Deterministic seeded fault injection.
//
// The paper positions Planaria as hardware sitting on a phone SoC's memory
// path: a glitched metadata bit or a malformed request must degrade prefetch
// accuracy, never crash the memory system. This layer makes that property
// testable. A FaultPlan names which fault classes are armed and at what
// per-opportunity rate; a FaultInjector turns the plan into deterministic
// Bernoulli decisions drawn from per-class xoshiro streams, so the same seed
// reproduces the same fault sequence on every platform, at every thread
// count, on every rerun.
//
// Determinism contract:
//   * Each fault class owns TWO private streams — one for the inject/skip
//     decision, one for choosing the corruption target (which entry, which
//     bit). A decision that does not fire never consumes target randomness,
//     and arming one class never perturbs another class's stream.
//   * Injectors are instantiated per deterministic execution domain: the
//     simulator keeps one per DRAM channel (channels are simulated
//     independently, possibly concurrently) plus one for the serial trace
//     ingest pass. Within a domain, fault opportunities arrive in a fixed
//     order, so the decision sequence is fixed too.
//   * A class with rate 0 consumes no randomness at all; a Simulator whose
//     plan has no class enabled allocates no injectors, so zero-fault builds
//     are bit-identical to pre-fault builds (the PR 2 identity gate holds).
//
// Counting contract: roll() only decides; the site that actually applies the
// fault calls record(), so injected() counts *applied* faults (a PHT flip
// that found an empty table, for example, is a decision but not a fault).
// planaria-audit's chaos stage checks these counters against the recovery
// side's accounting.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "snapshot/snapshot.hpp"

namespace planaria::fault {

/// Every injectable fault, one per hook point in the pipeline.
enum class FaultClass : std::uint8_t {
  kTraceCorruption = 0,  ///< corrupt a trace record's arrival in flight
  kSlpPatternFlip,       ///< flip one bit of one SLP PHT pattern bitmap
  kTlpPatternFlip,       ///< flip one bit of one TLP RPT recent-access bitmap
  kPrefetchDrop,         ///< silently drop an issued prefetch request
  kPrefetchDelay,        ///< delay an issued prefetch by a fixed interval
  kDramStall,            ///< stall a DRAM channel's command bus for N cycles
  kCount,
};

inline constexpr int kFaultClassCount = static_cast<int>(FaultClass::kCount);

const char* fault_class_name(FaultClass fault_class);

/// Which faults to inject, how often, and from which seed. A default plan
/// injects nothing.
struct FaultPlan {
  std::uint64_t seed = 0x5EEDED;
  /// Per-opportunity injection probability per class, in [0, 1].
  double rate[kFaultClassCount] = {};
  Cycle dram_stall_cycles = 2048;     ///< stall length per kDramStall fault
  Cycle prefetch_delay_cycles = 512;  ///< added latency per kPrefetchDelay

  bool enabled(FaultClass fault_class) const {
    return rate[static_cast<int>(fault_class)] > 0.0;
  }
  bool any_enabled() const;

  /// Throws std::invalid_argument on out-of-range rates or zero-length
  /// stall/delay intervals while their class is armed.
  void validate() const;

  /// Plan with exactly one class armed — the chaos audit's unit of isolation.
  static FaultPlan single(FaultClass fault_class, double rate,
                          std::uint64_t seed);

  /// Session-scoped derivative: identical classes, rates and intervals, seed
  /// re-mixed with the session id through a splitmix64 finalizer. A serving
  /// fleet arms one plan and gives every tenant its own fault universe —
  /// adjacent ids draw fully decorrelated sequences, and the derivation is
  /// stable across runs, thread counts and resume points (the serve audit's
  /// kill/resume drills depend on exactly this).
  FaultPlan for_session(std::uint64_t session_id) const;
};

/// Turns a FaultPlan into a deterministic decision sequence for one execution
/// domain (one DRAM channel, or the serial ingest pass). Not thread-safe by
/// design: each concurrent domain owns its own injector.
class FaultInjector {
 public:
  /// `stream` names the execution domain (channel index, or kIngestStream)
  /// so sibling injectors built from the same plan draw disjoint sequences.
  FaultInjector(const FaultPlan& plan, std::uint64_t stream);

  /// Stream id the simulator uses for the trace ingest injector, chosen well
  /// away from any channel index.
  static constexpr std::uint64_t kIngestStream = 0xF417;

  /// One Bernoulli decision on the class's private stream. Consumes no
  /// randomness when the class is disabled.
  bool roll(FaultClass fault_class);

  /// Target-selection stream for a fired decision (which entry, which bit,
  /// how far to corrupt). Never consumed by roll().
  Rng& rng(FaultClass fault_class) {
    return aux_[static_cast<int>(fault_class)];
  }

  /// The applying site acknowledges one injected fault. Separated from
  /// roll() so inapplicable decisions (e.g. a flip against an empty table)
  /// are not counted as injected.
  void record(FaultClass fault_class) {
    ++injected_[static_cast<int>(fault_class)];
  }

  std::uint64_t injected(FaultClass fault_class) const {
    return injected_[static_cast<int>(fault_class)];
  }
  std::uint64_t total_injected() const;

  const FaultPlan& plan() const { return plan_; }

  /// Checkpoint/restore: both xoshiro streams per class plus the applied
  /// counts. The plan itself is reconstructed from SimConfig at resume time
  /// (and covered by the simulator's config fingerprint), so a restored
  /// injector continues the exact decision/target sequences mid-stream.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  FaultPlan plan_;
  Rng decision_[kFaultClassCount];
  Rng aux_[kFaultClassCount];
  std::uint64_t injected_[kFaultClassCount] = {};
};

}  // namespace planaria::fault
