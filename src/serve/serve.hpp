// Multi-tenant serving loop (DESIGN.md §15).
//
// The sweep machinery (ExperimentRunner) answers "run this grid once";
// production serving is a different shape: thousands of tenant sessions
// arriving against a fixed live-capacity budget, each streaming its own
// trace through its own prefetcher/simulator stack, with slow, bursty and
// faulty tenants that must degrade *their own* session and nothing else.
// SessionServer is that loop, built from the layers below it:
//
//   * Backpressure, never silent drops. Admission beyond max_live_sessions
//     defers (admission_defers); ingest beyond queue_capacity defers
//     (ingest_defers); a session that exhausts its retry budget or deadline
//     is shed with its queued remainder counted (shed_queued_records). Every
//     record is accounted: ingested == fed + shed_queued at drain.
//   * Deterministic time. The server advances a tick counter — admission,
//     ingest windows, quanta, backoff delays, deadlines and checkpoint
//     cadence are all tick-denominated. No wall clock anywhere (the lint
//     determinism bans apply to this module like any other), so a run is a
//     pure function of (config, specs): any thread count, any kill point.
//   * Bounded retry with seeded exponential backoff. Session-level faults —
//     drill faults rolled from a fault::FaultInjector on a per-session
//     stream, or a real exception escaping a quantum — cost one attempt and
//     park the session for base << (attempt-1) ticks (capped); max_attempts
//     faults shed it (kShedRetry). Drill decisions come at quantum start,
//     before any simulator mutation, so an armed drill plan delays
//     scheduling but never changes what a surviving session feeds its
//     simulator: per-session SimResults are byte-identical with drills on
//     or off.
//   * Crash safety. With checkpointing enabled the server periodically
//     writes one snapshot per live session (sim::write_checkpoint, rotation
//     and all) plus a server envelope (tick, counters, every session's
//     cursors/attempts/injector state, finished results) under the same
//     current/.prev retention. A restarted server resumes every live
//     session bit-identically: envelope current, then .prev, then cold; per
//     session its snapshot, then .prev, then a cold replay of the already-
//     fed prefix. planaria-audit --stage serve kills a fleet at seeded
//     ticks and requires byte-identical outcomes, summaries and counters
//     versus the uninterrupted run, at 1 and 4 threads.
//   * Graceful drain. request_drain() stops admissions (pending sessions
//     are rejected, counted) and source ingest; queued records flush
//     through the simulators; sessions finalize (kCompleted if the source
//     was fully ingested, else kDrained with a partial result); a final
//     checkpoint lands; zero records remain queued.
//
// Within a tick: admit (serial, id order) -> ingest (serial, id order) ->
// run one quantum per runnable session (parallel over the pool; each task
// touches only its own session) -> post-pass (serial, id order: counters,
// fault/backoff/shed, completions, deadlines) -> checkpoint if due. All
// cross-session aggregation happens in the serial phases, which is what
// makes the loop thread-count-invariant.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "common/thread_pool.hpp"
#include "fault/fault.hpp"
#include "io/vfs.hpp"
#include "sim/checkpoint.hpp"
#include "sim/config.hpp"
#include "sim/simulator.hpp"
#include "trace/batch.hpp"

namespace planaria::serve {

/// Serving-loop knobs. Defaults give a small but fully exercised loop;
/// validate() rejects degenerate values that would stall the tick cycle.
struct ServeConfig {
  sim::SimConfig sim;                 ///< per-session simulator config
  std::uint64_t records_per_session = 20000;  ///< source length per tenant
  std::size_t max_live_sessions = 64;   ///< admission budget (backpressure)
  std::uint64_t queue_capacity = 4096;  ///< per-session ingest queue bound
  std::uint64_t ingest_per_tick = 1024; ///< source arrival rate per session
  std::uint64_t quantum_records = 512;  ///< records simulated per quantum
  std::uint64_t deadline_ticks = 0;     ///< shed after N ticks live; 0 = off
  int max_attempts = 3;                 ///< session faults before kShedRetry
  std::uint64_t backoff_base_ticks = 2; ///< first retry delay
  std::uint64_t backoff_cap_ticks = 64; ///< exponential backoff ceiling
  /// Per-quantum drill fault probability (fault::kTraceCorruption rolled on
  /// a per-session stream — "tenant submitted a malformed batch"). 0 = off.
  double session_fault_rate = 0.0;
  std::uint64_t drill_seed = 0xD811;  ///< seed for the drill fault streams
  /// Derive each session's SimConfig fault plan via FaultPlan::for_session
  /// so tenants draw disjoint in-simulator fault sequences from one plan.
  bool per_session_fault_streams = true;
  std::string checkpoint_dir;             ///< empty = no crash safety
  std::uint64_t checkpoint_every_ticks = 0;  ///< envelope cadence; 0 = off
  bool checkpointing() const {
    return !checkpoint_dir.empty() && checkpoint_every_ticks > 0;
  }
  void validate() const;
};

/// One tenant: which app trace it streams, which prefetcher serves it, and
/// the seed that individualizes its trace (two tenants running the same app
/// stream different traffic). `device` is a reporting label only.
struct SessionSpec {
  std::string app = "HoK";
  sim::PrefetcherKind kind = sim::PrefetcherKind::kPlanaria;
  std::uint64_t user_seed = 1;
  std::string device = "phone";
  friend bool operator==(const SessionSpec&, const SessionSpec&) = default;
};

/// Session lifecycle. Terminal states partition every admitted-or-not
/// session: admitted == completed + drained + shed_retry + shed_deadline,
/// and submitted == admitted + rejected.
enum class SessionState : std::uint8_t {
  kPending = 0,       ///< submitted, waiting for admission capacity
  kLive,              ///< admitted, streaming and simulating
  kBackoff,           ///< parked until a tick after a session fault
  kCompleted,         ///< full source simulated; result final
  kDrained,           ///< drain flushed its queue before source end; partial result
  kShedRetry,         ///< max_attempts session faults
  kShedDeadline,      ///< exceeded deadline_ticks
  kRejected,          ///< never admitted (drain arrived first)
};

const char* session_state_name(SessionState state);
bool session_state_terminal(SessionState state);

/// Every admission/backpressure/fault decision the loop makes, as monotonic
/// counters — the explicit-accounting contract (nothing is dropped
/// silently). All fields are checkpointed, so an interrupted-and-resumed
/// serve finishes with counters equal (operator==) to the uninterrupted
/// run's.
struct ServeCounters {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t admission_defers = 0;  ///< pending-session x tick deferrals
  std::uint64_t ingested_records = 0;  ///< source -> queue
  std::uint64_t fed_records = 0;       ///< queue -> simulator
  std::uint64_t ingest_defers = 0;     ///< queue-full x tick deferrals
  std::uint64_t shed_queued_records = 0;  ///< queued remainder of shed sessions
  std::uint64_t drills_injected = 0;   ///< drill faults fired
  std::uint64_t quantum_errors = 0;    ///< real exceptions escaping a quantum
  std::uint64_t backoff_events = 0;    ///< faults that parked a session
  std::uint64_t backoff_ticks_waited = 0;
  std::uint64_t deadline_violations = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_drained = 0;
  std::uint64_t sessions_shed_retry = 0;
  std::uint64_t sessions_shed_deadline = 0;
  std::uint64_t sessions_rejected = 0;
  /// Checkpoint accounting (degraded-mode serving): every server-envelope
  /// attempt lands in exactly one bucket — ckpt_attempted == ckpt_written +
  /// ckpt_degraded — and the serve audit enforces that identity at drain. A
  /// degraded attempt (rotation failure, ENOSPC, torn tmp, any storage
  /// fault) sheds the *checkpoint*, never the server: sessions keep
  /// simulating and a bounded seeded-backoff re-attempt follows.
  std::uint64_t ckpt_attempted = 0;
  std::uint64_t ckpt_written = 0;   ///< server envelopes landed (incl. final)
  std::uint64_t ckpt_degraded = 0;  ///< attempts lost to storage faults
  friend bool operator==(const ServeCounters&, const ServeCounters&) = default;
};

/// How a restarted server actually came back — the resume trail, surfaced
/// for audits. Deliberately *not* part of ServeCounters: an interrupted run
/// must reproduce the uninterrupted run's counters exactly, while this
/// struct records the interruption itself.
struct RecoveryStats {
  bool resumed = false;
  bool fell_back = false;  ///< envelope came from .prev, not current
  std::uint64_t resumed_tick = 0;
  std::uint64_t sessions_restored = 0;   ///< from their current snapshot
  std::uint64_t sessions_fell_back = 0;  ///< from their .prev snapshot
  std::uint64_t sessions_replayed = 0;   ///< cold replay of the fed prefix
  std::vector<std::string> notes;        ///< one line per rejected candidate
};

/// Final record of one session, in session-id order from outcomes().
/// `result` is meaningful for kCompleted and kDrained.
struct SessionOutcome {
  std::uint64_t id = 0;
  SessionSpec spec;
  SessionState state = SessionState::kPending;
  std::uint64_t admit_tick = 0;
  std::uint64_t end_tick = 0;
  int attempts = 0;             ///< session faults charged
  std::uint64_t records_fed = 0;
  sim::SimResult result;
  friend bool operator==(const SessionOutcome&, const SessionOutcome&) = default;
};

/// Rolling per-app / per-device percentile summaries over *completed*
/// sessions (drained partials would skew the percentiles). Insertion-order
/// independent (see analysis::StreamSummary), so the incremental fold of a
/// live server equals the id-order rebuild of a resumed one.
struct FleetSummary {
  analysis::GroupedSummary amat_by_app;
  analysis::GroupedSummary amat_by_device;
  analysis::GroupedSummary ipc_by_app;
  analysis::GroupedSummary hit_rate_by_device;
  friend bool operator==(const FleetSummary&, const FleetSummary&) = default;
};

/// Dispatch helper for the per-tick quantum fan-out: runs fn(0..n-1) on the
/// pool when one is present, serially otherwise. Registered as a
/// parallel-api in tools/lint/layers.conf so lambdas passed here are
/// scanned by the race-* family even at call sites that only ever see the
/// serial fallback.
void for_each_ready(common::ThreadPool* pool, std::size_t n,
                    const std::function<void(std::size_t)>& fn);

// lint: suppress(snapshot-missing) the server checkpoints through its own envelope + per-session sim snapshots, not the Snapshottable interface
class SessionServer {
 public:
  explicit SessionServer(ServeConfig config, std::size_t threads = 1);

  /// Registers one tenant; returns its session id (dense, submit order).
  /// Only legal before the first tick — the fleet is part of the run's
  /// identity (the envelope fingerprint covers it).
  std::uint64_t add_session(const SessionSpec& spec);
  void add_fleet(const std::vector<SessionSpec>& specs);

  /// Advances the loop by one tick (first call resumes from a checkpoint if
  /// one is present). Returns false once every session is terminal and the
  /// final state is sealed.
  bool tick();

  /// Runs tick() to completion. Every submitted session ends terminal and
  /// queued_records() == 0 afterwards.
  void serve();

  /// Graceful drain: stop admitting (pending sessions reject on the next
  /// tick), stop source ingest, let queued records flush through.
  void request_drain();

  std::uint64_t current_tick() const { return tick_; }
  bool draining() const { return draining_; }
  bool finished() const { return finished_; }
  std::size_t live_sessions() const { return live_count_; }
  /// Records sitting in non-terminal session queues right now.
  std::uint64_t queued_records() const;

  const ServeCounters& counters() const { return counters_; }
  const RecoveryStats& recovery() const { return recovery_; }
  /// Per-session outcomes in id order; valid once finished().
  const std::vector<SessionOutcome>& outcomes() const;
  const FleetSummary& summary() const { return summary_; }

 private:
  struct Session {
    std::uint64_t id = 0;
    SessionSpec spec;
    SessionState state = SessionState::kPending;
    std::uint64_t admit_tick = 0;
    std::uint64_t end_tick = 0;
    int attempts = 0;
    std::uint64_t backoff_until = 0;
    std::uint64_t ingested = 0;  ///< source records pulled into the queue
    std::uint64_t fed = 0;       ///< records fed into the simulator
    std::uint64_t fingerprint = 0;  ///< trace identity for resume validation
    trace::TraceBatch batch;        ///< whole source, lazily materialized
    std::unique_ptr<sim::Simulator> sim;
    std::unique_ptr<fault::FaultInjector> drill;
    sim::SimResult result;
    bool has_result = false;
    // Quantum scratch: written only by this session's task inside the
    // parallel region, consumed by the serial post-pass.
    std::uint64_t tick_fed = 0;
    bool tick_fault = false;
    bool tick_error = false;
  };

  static constexpr std::uint64_t kDrillStreamBase = 0x5E55'0000ull;
  /// v2: ckpt_attempted/ckpt_written/ckpt_degraded joined the CTRS block.
  static constexpr std::uint32_t kEnvelopeVersion = 2;

  bool active(const Session& s) const {
    return s.state == SessionState::kLive || s.state == SessionState::kBackoff;
  }

  void start();
  void admit_pending();
  void admit(Session& s);
  void materialize(Session& s) const;  ///< trace + batch + fingerprint
  void build_sim(Session& s) const;    ///< fresh Simulator for this session
  void ingest_all();
  std::size_t collect_runnable();
  void run_quantum(std::size_t slot);  ///< hot root (tools/lint/layers.conf)
  void post_tick();
  void handle_fault(Session& s, bool rebuild);
  void complete(Session& s);
  void shed(Session& s, SessionState why);
  void release_heavy(Session& s);
  void fold_into_summary(const Session& s);
  /// Seals outcomes/finished_. `write_final` is false only when resuming
  /// into an already-terminal fleet, whose envelope (and checkpoint count)
  /// already includes the final write.
  void finalize(bool write_final);
  bool all_terminal() const;

  sim::CheckpointConfig session_ckpt(std::uint64_t id) const;
  std::string envelope_path() const;
  std::uint64_t fleet_fingerprint() const;
  void write_server_checkpoint();
  /// Books one failed checkpoint attempt and schedules the bounded
  /// seeded-backoff re-attempt (see ServeCounters ckpt_* identity).
  void degrade_checkpoint(const std::string& why);
  void encode_envelope(snapshot::Writer& w) const;
  void decode_envelope(snapshot::Reader& r);
  bool try_resume();
  void reset_runtime();
  void restore_session(Session& s);
  void remove_session_snapshots(std::uint64_t id) const;

  ServeConfig config_;
  fault::FaultPlan drill_plan_;
  std::unique_ptr<common::ThreadPool> pool_;  ///< null when threads == 1
  std::vector<Session> sessions_;
  std::vector<std::uint32_t> run_;  ///< this tick's runnable slots (id order)
  std::uint64_t tick_ = 0;
  std::size_t live_count_ = 0;
  bool started_ = false;
  bool draining_ = false;
  bool finished_ = false;
  /// Degraded-checkpoint retry state: consecutive failed attempts, the tick
  /// of the next re-attempt (0 = none pending), and the seeded jitter stream
  /// that staggers re-attempts. Deliberately not checkpointed: a resumed
  /// server starts with a clean retry ledger, and the identity counters live
  /// in ServeCounters.
  int ckpt_failstreak_ = 0;
  std::uint64_t ckpt_retry_at_ = 0;
  io::Stream ckpt_jitter_{0};
  ServeCounters counters_;
  RecoveryStats recovery_;
  FleetSummary summary_;
  std::vector<SessionOutcome> outcomes_;
};

}  // namespace planaria::serve
