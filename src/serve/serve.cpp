#include "serve/serve.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "trace/apps.hpp"
#include "trace/generator.hpp"

namespace planaria::serve {

namespace {

/// splitmix64 finalizer: decorrelates a tenant's user_seed before it
/// perturbs the app profile seed, so adjacent tenant seeds produce
/// unrelated traces.
std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t z = x + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr fault::FaultClass kDrillClass = fault::FaultClass::kTraceCorruption;

}  // namespace

void ServeConfig::validate() const {
  sim.validate();
  if (records_per_session == 0) {
    throw std::invalid_argument("serve: records_per_session == 0");
  }
  if (max_live_sessions == 0) {
    throw std::invalid_argument("serve: max_live_sessions == 0");
  }
  if (queue_capacity == 0 || ingest_per_tick == 0 || quantum_records == 0) {
    throw std::invalid_argument(
        "serve: queue_capacity/ingest_per_tick/quantum_records must be > 0");
  }
  if (max_attempts <= 0) {
    throw std::invalid_argument("serve: max_attempts must be > 0");
  }
  if (backoff_base_ticks == 0 || backoff_cap_ticks < backoff_base_ticks) {
    throw std::invalid_argument(
        "serve: backoff interval must satisfy 0 < base <= cap");
  }
  if (session_fault_rate < 0.0 || session_fault_rate > 1.0) {
    throw std::invalid_argument("serve: session_fault_rate outside [0, 1]");
  }
}

const char* session_state_name(SessionState state) {
  switch (state) {
    case SessionState::kPending: return "pending";
    case SessionState::kLive: return "live";
    case SessionState::kBackoff: return "backoff";
    case SessionState::kCompleted: return "completed";
    case SessionState::kDrained: return "drained";
    case SessionState::kShedRetry: return "shed-retry";
    case SessionState::kShedDeadline: return "shed-deadline";
    case SessionState::kRejected: return "rejected";
  }
  return "?";
}

bool session_state_terminal(SessionState state) {
  switch (state) {
    case SessionState::kPending:
    case SessionState::kLive:
    case SessionState::kBackoff:
      return false;
    default:
      return true;
  }
}

void for_each_ready(common::ThreadPool* pool, std::size_t n,
                    const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr && pool->size() > 1 && n > 1) {
    pool->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

SessionServer::SessionServer(ServeConfig config, std::size_t threads)
    : config_(std::move(config)) {
  config_.validate();
  if (threads == 0) throw std::invalid_argument("serve: threads == 0");
  if (threads > 1) pool_ = std::make_unique<common::ThreadPool>(threads);
  drill_plan_.seed = config_.drill_seed;
  drill_plan_.rate[static_cast<int>(kDrillClass)] = config_.session_fault_rate;
  ckpt_jitter_ = io::Stream(mix64(config_.drill_seed ^ 0xC4B7'C4B7ull));
}

std::uint64_t SessionServer::add_session(const SessionSpec& spec) {
  if (started_) {
    throw std::logic_error("serve: add_session after the first tick");
  }
  // Fail unknown specs loudly at submit time, not mid-serve.
  trace::app_by_name(spec.app);
  sim::prefetcher_kind_name(spec.kind);
  Session s;
  s.id = sessions_.size();
  s.spec = spec;
  sessions_.push_back(std::move(s));
  ++counters_.submitted;
  return sessions_.back().id;
}

void SessionServer::add_fleet(const std::vector<SessionSpec>& specs) {
  for (const auto& spec : specs) add_session(spec);
}

void SessionServer::request_drain() { draining_ = true; }

std::uint64_t SessionServer::queued_records() const {
  std::uint64_t queued = 0;
  for (const Session& s : sessions_) {
    if (active(s)) queued += s.ingested - s.fed;
  }
  return queued;
}

const std::vector<SessionOutcome>& SessionServer::outcomes() const {
  if (!finished_) {
    throw std::logic_error("serve: outcomes() before the serve finished");
  }
  return outcomes_;
}

void SessionServer::materialize(Session& s) const {
  trace::AppProfile profile = trace::app_by_name(s.spec.app);
  profile.seed ^= mix64(s.spec.user_seed);
  const auto records =
      trace::generate_app_trace(profile, config_.records_per_session);
  s.batch = trace::TraceBatch(records);
  s.fingerprint = sim::trace_fingerprint(s.batch);
}

void SessionServer::build_sim(Session& s) const {
  sim::SimConfig cfg = config_.sim;
  if (config_.per_session_fault_streams && cfg.fault.any_enabled()) {
    cfg.fault = cfg.fault.for_session(s.id);
  }
  s.sim = std::make_unique<sim::Simulator>(
      cfg, sim::make_prefetcher_factory(s.spec.kind),
      sim::prefetcher_kind_name(s.spec.kind));
}

void SessionServer::admit(Session& s) {
  materialize(s);
  build_sim(s);
  if (config_.session_fault_rate > 0.0) {
    s.drill = std::make_unique<fault::FaultInjector>(drill_plan_,
                                                     kDrillStreamBase + s.id);
  }
  s.state = SessionState::kLive;
  s.admit_tick = tick_;
  ++live_count_;
  ++counters_.admitted;
}

void SessionServer::admit_pending() {
  for (Session& s : sessions_) {
    if (s.state != SessionState::kPending) continue;
    if (draining_) {
      s.state = SessionState::kRejected;
      s.end_tick = tick_;
      ++counters_.sessions_rejected;
      continue;
    }
    if (live_count_ >= config_.max_live_sessions) {
      ++counters_.admission_defers;
      continue;
    }
    admit(s);
  }
}

void SessionServer::ingest_all() {
  if (draining_) return;
  for (Session& s : sessions_) {
    if (!active(s) || s.ingested == config_.records_per_session) continue;
    const std::uint64_t queued = s.ingested - s.fed;
    const std::uint64_t room = config_.queue_capacity - queued;
    const std::uint64_t want = std::min(
        config_.ingest_per_tick, config_.records_per_session - s.ingested);
    const std::uint64_t take = std::min(want, room);
    if (take < want) ++counters_.ingest_defers;
    s.ingested += take;
    counters_.ingested_records += take;
  }
}

std::size_t SessionServer::collect_runnable() {
  run_.clear();
  for (Session& s : sessions_) {
    if (s.state == SessionState::kBackoff && tick_ >= s.backoff_until) {
      s.state = SessionState::kLive;
    }
    if (s.state == SessionState::kLive && s.ingested > s.fed) {
      run_.push_back(static_cast<std::uint32_t>(s.id));
    }
  }
  return run_.size();
}

void SessionServer::run_quantum(std::size_t slot) {
  Session& s = sessions_[run_[slot]];
  s.tick_fed = 0;
  s.tick_fault = false;
  s.tick_error = false;
  // Drill decision first, before any simulator mutation: a fired drill only
  // delays scheduling, so a surviving session's fed sequence — and hence its
  // SimResult — is byte-identical with drills armed or not.
  if (s.drill != nullptr && s.drill->roll(kDrillClass)) {
    s.drill->record(kDrillClass);
    s.tick_fault = true;
    return;
  }
  const std::uint64_t queued = s.ingested - s.fed;
  const std::uint64_t feed = std::min(config_.quantum_records, queued);
  try {
    s.sim->run_sharded(s.batch, s.fed, s.fed + feed, nullptr);
    s.fed += feed;
    s.tick_fed = feed;
  } catch (...) {
    s.tick_error = true;
  }
}

void SessionServer::handle_fault(Session& s, bool rebuild) {
  ++s.attempts;
  if (s.attempts >= config_.max_attempts) {
    shed(s, SessionState::kShedRetry);
    return;
  }
  if (rebuild) {
    // A real exception may have left the simulator mid-quantum; s.fed only
    // advances on success, so a fresh simulator replayed over the fed prefix
    // lands exactly where the session was (bit-identically — the same
    // guarantee the checkpoint cold-start path relies on).
    build_sim(s);
    if (s.fed > 0) s.sim->run_sharded(s.batch, 0, s.fed, pool_.get());
  }
  std::uint64_t shift = static_cast<std::uint64_t>(s.attempts) - 1;
  if (shift > 62) shift = 62;
  std::uint64_t delay = config_.backoff_base_ticks << shift;
  if (delay > config_.backoff_cap_ticks) delay = config_.backoff_cap_ticks;
  if (s.drill != nullptr && config_.backoff_base_ticks > 1) {
    // Deterministic jitter off the drill's target-selection stream —
    // seeded, checkpointed with the injector, never wall clock.
    delay += s.drill->rng(kDrillClass).next_below(config_.backoff_base_ticks);
  }
  s.state = SessionState::kBackoff;
  s.backoff_until = tick_ + delay;
  ++counters_.backoff_events;
  counters_.backoff_ticks_waited += delay;
}

void SessionServer::fold_into_summary(const Session& s) {
  summary_.amat_by_app.add(s.spec.app, s.result.amat_cycles);
  summary_.amat_by_device.add(s.spec.device, s.result.amat_cycles);
  summary_.ipc_by_app.add(s.spec.app, s.result.ipc);
  summary_.hit_rate_by_device.add(s.spec.device, s.result.sc_hit_rate);
}

void SessionServer::release_heavy(Session& s) {
  s.batch = trace::TraceBatch();
  s.sim.reset();
  s.drill.reset();
}

void SessionServer::complete(Session& s) {
  s.result = s.sim->finish();
  s.has_result = true;
  const bool full = s.fed == config_.records_per_session;
  s.state = full ? SessionState::kCompleted : SessionState::kDrained;
  s.end_tick = tick_;
  if (full) {
    ++counters_.sessions_completed;
    fold_into_summary(s);
  } else {
    ++counters_.sessions_drained;
  }
  release_heavy(s);
  --live_count_;
  if (config_.checkpointing()) remove_session_snapshots(s.id);
}

void SessionServer::shed(Session& s, SessionState why) {
  counters_.shed_queued_records += s.ingested - s.fed;
  if (why == SessionState::kShedRetry) {
    ++counters_.sessions_shed_retry;
  } else {
    ++counters_.sessions_shed_deadline;
    ++counters_.deadline_violations;
  }
  s.state = why;
  s.end_tick = tick_;
  release_heavy(s);
  --live_count_;
  if (config_.checkpointing()) remove_session_snapshots(s.id);
}

void SessionServer::post_tick() {
  // Fault/feed accounting for the sessions that actually ran, in id order
  // (run_ is built in id order).
  for (const std::uint32_t idx : run_) {
    Session& s = sessions_[idx];
    counters_.fed_records += s.tick_fed;
    if (s.tick_fault) {
      ++counters_.drills_injected;
      handle_fault(s, /*rebuild=*/false);
    } else if (s.tick_error) {
      ++counters_.quantum_errors;
      handle_fault(s, /*rebuild=*/true);
    }
  }
  // Completions, drain flush-out, deadlines — serial, id order.
  for (Session& s : sessions_) {
    if (s.state == SessionState::kLive) {
      const bool source_done = s.fed == config_.records_per_session;
      const bool queue_empty = s.fed == s.ingested;
      if (source_done || (draining_ && queue_empty)) {
        complete(s);
        continue;
      }
    }
    if (active(s) && config_.deadline_ticks > 0 &&
        tick_ - s.admit_tick >= config_.deadline_ticks) {
      shed(s, SessionState::kShedDeadline);
    }
  }
}

bool SessionServer::all_terminal() const {
  for (const Session& s : sessions_) {
    if (!session_state_terminal(s.state)) return false;
  }
  return true;
}

void SessionServer::start() {
  started_ = true;
  if (!config_.checkpointing()) return;
  std::filesystem::create_directories(config_.checkpoint_dir);
  try_resume();
}

bool SessionServer::tick() {
  if (!started_) start();
  if (finished_) return false;
  ++tick_;
  admit_pending();
  ingest_all();
  const std::size_t n = collect_runnable();
  for_each_ready(pool_.get(), n,
                 [this](std::size_t i) { run_quantum(i); });
  post_tick();
  if (all_terminal()) {
    finalize(/*write_final=*/true);
    return false;
  }
  // Natural cadence, plus the bounded-backoff re-attempt schedule a degraded
  // checkpoint may have posted (ckpt_retry_at_ == 0 means none pending).
  if (config_.checkpointing() &&
      (tick_ % config_.checkpoint_every_ticks == 0 ||
       (ckpt_retry_at_ != 0 && tick_ >= ckpt_retry_at_))) {
    write_server_checkpoint();
  }
  return true;
}

void SessionServer::serve() {
  while (tick()) {
  }
}

void SessionServer::finalize(bool write_final) {
  if (write_final && config_.checkpointing()) write_server_checkpoint();
  outcomes_.clear();
  outcomes_.reserve(sessions_.size());
  for (const Session& s : sessions_) {
    SessionOutcome o;
    o.id = s.id;
    o.spec = s.spec;
    o.state = s.state;
    o.admit_tick = s.admit_tick;
    o.end_tick = s.end_tick;
    o.attempts = s.attempts;
    o.records_fed = s.fed;
    if (s.has_result) o.result = s.result;
    outcomes_.push_back(std::move(o));
  }
  finished_ = true;
}

// ---------------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------------

sim::CheckpointConfig SessionServer::session_ckpt(std::uint64_t id) const {
  sim::CheckpointConfig ckpt;
  ckpt.dir = config_.checkpoint_dir;
  ckpt.every = 1;  // cadence is the server's; write_checkpoint only needs dir
  ckpt.label = "session_" + std::to_string(id);
  return ckpt;
}

std::string SessionServer::envelope_path() const {
  return config_.checkpoint_dir + "/server.snap";
}

std::uint64_t SessionServer::fleet_fingerprint() const {
  snapshot::Writer w;
  w.u64(config_.records_per_session);
  w.u64(config_.max_live_sessions);
  w.u64(config_.queue_capacity);
  w.u64(config_.ingest_per_tick);
  w.u64(config_.quantum_records);
  w.u64(config_.deadline_ticks);
  w.i64(config_.max_attempts);
  w.u64(config_.backoff_base_ticks);
  w.u64(config_.backoff_cap_ticks);
  w.f64(config_.session_fault_rate);
  w.u64(config_.drill_seed);
  w.b(config_.per_session_fault_streams);
  w.u64(config_.sim.fault.seed);
  for (double r : config_.sim.fault.rate) w.f64(r);
  w.u64(sessions_.size());
  for (const Session& s : sessions_) {
    w.str(s.spec.app);
    w.str(sim::prefetcher_kind_name(s.spec.kind));
    w.u64(s.spec.user_seed);
    w.str(s.spec.device);
  }
  const auto& buf = w.buffer();
  const std::uint64_t crc = snapshot::crc32(buf.data(), buf.size());
  return (crc << 32) ^ buf.size();
}

void SessionServer::encode_envelope(snapshot::Writer& w) const {
  w.tag(snapshot::tag4("SRVE"));
  w.u32(kEnvelopeVersion);
  w.u64(fleet_fingerprint());
  w.u64(tick_);
  w.b(draining_);
  w.tag(snapshot::tag4("CTRS"));
  w.u64(counters_.submitted);
  w.u64(counters_.admitted);
  w.u64(counters_.admission_defers);
  w.u64(counters_.ingested_records);
  w.u64(counters_.fed_records);
  w.u64(counters_.ingest_defers);
  w.u64(counters_.shed_queued_records);
  w.u64(counters_.drills_injected);
  w.u64(counters_.quantum_errors);
  w.u64(counters_.backoff_events);
  w.u64(counters_.backoff_ticks_waited);
  w.u64(counters_.deadline_violations);
  w.u64(counters_.sessions_completed);
  w.u64(counters_.sessions_drained);
  w.u64(counters_.sessions_shed_retry);
  w.u64(counters_.sessions_shed_deadline);
  w.u64(counters_.sessions_rejected);
  w.u64(counters_.ckpt_attempted);
  w.u64(counters_.ckpt_written);
  w.u64(counters_.ckpt_degraded);
  w.u64(sessions_.size());
  for (const Session& s : sessions_) {
    // Length-framed per session: a reader that rejects one session record
    // fails at its boundary instead of misreading every record after it.
    const std::size_t section = w.begin_section(snapshot::tag4("SESS"));
    w.u64(s.id);
    w.u8(static_cast<std::uint8_t>(s.state));
    w.u64(s.admit_tick);
    w.u64(s.end_tick);
    w.i64(s.attempts);
    w.u64(s.backoff_until);
    w.u64(s.ingested);
    w.u64(s.fed);
    w.u64(s.fingerprint);
    w.b(s.drill != nullptr);
    if (s.drill != nullptr) s.drill->save_state(w);
    w.b(s.has_result);
    if (s.has_result) s.result.save_state(w);
    w.end_section(section);
  }
}

void SessionServer::degrade_checkpoint(const std::string& why) {
  // The attempt was already booked optimistically as written (so a landed
  // envelope includes its own write); move it to the degraded bucket. The
  // identity ckpt_attempted == ckpt_written + ckpt_degraded holds at every
  // instant the counters are observable.
  --counters_.ckpt_written;
  ++counters_.ckpt_degraded;
  recovery_.notes.push_back("checkpoint at tick " + std::to_string(tick_) +
                            " degraded: " + why);
  // Bounded seeded-backoff re-attempt: same base/cap knobs as session
  // retries, deterministic jitter off a dedicated stream. After
  // max_attempts consecutive losses, stop re-attempting and wait for the
  // next natural cadence tick — a full disk should not be hammered every
  // tick.
  if (ckpt_failstreak_ < config_.max_attempts) {
    ++ckpt_failstreak_;
    std::uint64_t shift = static_cast<std::uint64_t>(ckpt_failstreak_) - 1;
    if (shift > 62) shift = 62;
    std::uint64_t delay = config_.backoff_base_ticks << shift;
    if (delay > config_.backoff_cap_ticks) delay = config_.backoff_cap_ticks;
    if (config_.backoff_base_ticks > 1) {
      delay += ckpt_jitter_.next_below(config_.backoff_base_ticks);
    }
    ckpt_retry_at_ = tick_ + delay;
  } else {
    ckpt_retry_at_ = 0;
  }
}

void SessionServer::write_server_checkpoint() {
  // Per-session simulator snapshots first (each rotates its own current ->
  // .prev), then the envelope under the same rotation. A kill anywhere in
  // between leaves a decodable (envelope, session-snapshot) pair one
  // generation back.
  //
  // Storage failures anywhere in the chain — a session snapshot's rotation,
  // the envelope rename, ENOSPC inside write_file — shed the *checkpoint*,
  // never the server: every session's in-memory state is untouched, so the
  // fleet keeps simulating and only resumability is degraded (counted in
  // ckpt_degraded, re-attempted under bounded backoff).
  ++counters_.ckpt_attempted;
  ++counters_.ckpt_written;
  try {
    for (const Session& s : sessions_) {
      if (active(s)) {
        sim::write_checkpoint(*s.sim, session_ckpt(s.id), s.fed,
                              s.fingerprint);
      }
    }
    snapshot::Writer w;
    encode_envelope(w);
    const std::string path = envelope_path();
    if (io::exists(path)) io::rename_file(path, path + ".prev");
    snapshot::write_file(path, w.buffer());
    ckpt_failstreak_ = 0;
    ckpt_retry_at_ = 0;
  } catch (const snapshot::SnapshotError& e) {
    degrade_checkpoint(e.what());
  } catch (const io::IoError& e) {
    degrade_checkpoint(e.what());
  }
}

void SessionServer::remove_session_snapshots(std::uint64_t id) const {
  const sim::CheckpointConfig ckpt = session_ckpt(id);
  std::error_code ec;
  std::filesystem::remove(ckpt.current_path(), ec);
  std::filesystem::remove(ckpt.prev_path(), ec);
}

void SessionServer::reset_runtime() {
  tick_ = 0;
  live_count_ = 0;
  draining_ = false;
  counters_ = ServeCounters{};
  counters_.submitted = sessions_.size();
  summary_ = FleetSummary{};
  // The degraded-checkpoint retry ledger is runtime-only state: a resumed
  // server starts with a clean failstreak and no pending re-attempt.
  ckpt_failstreak_ = 0;
  ckpt_retry_at_ = 0;
  ckpt_jitter_ = io::Stream(mix64(config_.drill_seed ^ 0xC4B7'C4B7ull));
  for (Session& s : sessions_) {
    const SessionSpec spec = s.spec;
    const std::uint64_t id = s.id;
    s = Session{};
    s.id = id;
    s.spec = spec;
  }
}

void SessionServer::restore_session(Session& s) {
  materialize(s);
  // The envelope's fingerprint pins the trace this session was serving; a
  // regeneration mismatch means the generator or spec drifted under us.
  if (s.fingerprint != sim::trace_fingerprint(s.batch)) {
    throw snapshot::SnapshotError("session " + std::to_string(s.id) +
                                  ": trace fingerprint mismatch at resume");
  }
  const sim::CheckpointConfig ckpt = session_ckpt(s.id);
  for (const std::string& path : {ckpt.current_path(), ckpt.prev_path()}) {
    try {
      build_sim(s);
      const std::uint64_t cursor =
          sim::load_checkpoint(*s.sim, path, s.fingerprint);
      if (cursor == s.fed) {
        if (path == ckpt.current_path()) {
          ++recovery_.sessions_restored;
        } else {
          ++recovery_.sessions_fell_back;
        }
        return;
      }
      recovery_.notes.push_back("session " + std::to_string(s.id) + ": " +
                                path + " cursor " + std::to_string(cursor) +
                                " != envelope " + std::to_string(s.fed));
    } catch (const snapshot::SnapshotError& e) {
      recovery_.notes.push_back("session " + std::to_string(s.id) + ": " +
                                e.what());
    }
  }
  // No usable snapshot: cold-replay the fed prefix. Chunked/sharded
  // execution is bit-identical to the uninterrupted feed, so the session
  // lands exactly where the envelope says it was.
  build_sim(s);
  if (s.fed > 0) s.sim->run_sharded(s.batch, 0, s.fed, pool_.get());
  ++recovery_.sessions_replayed;
}

void SessionServer::decode_envelope(snapshot::Reader& r) {
  r.expect_tag(snapshot::tag4("SRVE"));
  if (r.u32() != kEnvelopeVersion) {
    throw snapshot::SnapshotError("server envelope version mismatch");
  }
  if (r.u64() != fleet_fingerprint()) {
    throw snapshot::SnapshotError(
        "server envelope was written by a different fleet/config");
  }
  tick_ = r.u64();
  draining_ = r.b();
  r.expect_tag(snapshot::tag4("CTRS"));
  counters_.submitted = r.u64();
  counters_.admitted = r.u64();
  counters_.admission_defers = r.u64();
  counters_.ingested_records = r.u64();
  counters_.fed_records = r.u64();
  counters_.ingest_defers = r.u64();
  counters_.shed_queued_records = r.u64();
  counters_.drills_injected = r.u64();
  counters_.quantum_errors = r.u64();
  counters_.backoff_events = r.u64();
  counters_.backoff_ticks_waited = r.u64();
  counters_.deadline_violations = r.u64();
  counters_.sessions_completed = r.u64();
  counters_.sessions_drained = r.u64();
  counters_.sessions_shed_retry = r.u64();
  counters_.sessions_shed_deadline = r.u64();
  counters_.sessions_rejected = r.u64();
  counters_.ckpt_attempted = r.u64();
  counters_.ckpt_written = r.u64();
  counters_.ckpt_degraded = r.u64();
  if (r.u64() != sessions_.size()) {
    throw snapshot::SnapshotError("envelope session count mismatch");
  }
  for (Session& s : sessions_) {
    const std::uint64_t len = r.enter_section(snapshot::tag4("SESS"));
    const std::size_t begin = r.position();
    if (r.u64() != s.id) {
      throw snapshot::SnapshotError("envelope session id out of order");
    }
    const std::uint8_t state = r.u8();
    if (state > static_cast<std::uint8_t>(SessionState::kRejected)) {
      throw snapshot::SnapshotError("envelope holds unknown session state");
    }
    s.state = static_cast<SessionState>(state);
    s.admit_tick = r.u64();
    s.end_tick = r.u64();
    const std::int64_t attempts = r.i64();
    if (attempts < 0 || attempts > config_.max_attempts) {
      throw snapshot::SnapshotError("envelope attempts out of range");
    }
    s.attempts = static_cast<int>(attempts);
    s.backoff_until = r.u64();
    s.ingested = r.u64();
    s.fed = r.u64();
    if (s.fed > s.ingested || s.ingested > config_.records_per_session) {
      throw snapshot::SnapshotError("envelope cursors are impossible");
    }
    s.fingerprint = r.u64();
    if (r.b()) {
      s.drill = std::make_unique<fault::FaultInjector>(
          drill_plan_, kDrillStreamBase + s.id);
      s.drill->load_state(r);
    }
    s.has_result = r.b();
    if (s.has_result) s.result.load_state(r);
    if (r.position() - begin != len) {
      throw snapshot::SnapshotError("session section length mismatch");
    }
  }
  r.require_end();
}

bool SessionServer::try_resume() {
  const std::string current = envelope_path();
  for (const std::string& path : {current, current + ".prev"}) {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) continue;
    try {
      const auto payload = snapshot::read_file(path);
      snapshot::Reader r(payload);
      decode_envelope(r);
      // Envelope accepted: rebuild the heavy state of every non-terminal
      // admitted session and the summary fold of every completed one.
      for (Session& s : sessions_) {
        if (active(s)) {
          restore_session(s);
          ++live_count_;
        } else if (s.state == SessionState::kCompleted) {
          fold_into_summary(s);
        }
      }
      recovery_.resumed = true;
      recovery_.fell_back = path != current;
      recovery_.resumed_tick = tick_;
      if (all_terminal()) finalize(/*write_final=*/false);
      return true;
    } catch (const snapshot::SnapshotError& e) {
      recovery_.notes.push_back(path + ": " + e.what());
      reset_runtime();
    }
  }
  return false;
}

}  // namespace planaria::serve
