#include "sim/experiment.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "trace/generator.hpp"

namespace planaria::sim {

std::uint64_t records_from_env(std::uint64_t fallback) {
  const char* env = std::getenv("PLANARIA_RECORDS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || v == 0) {
    throw std::invalid_argument("PLANARIA_RECORDS must be a positive integer");
  }
  return static_cast<std::uint64_t>(v);
}

ExperimentRunner::ExperimentRunner(SimConfig config, std::uint64_t records)
    : config_(config), records_(records) {
  config_.validate();
  if (records_ == 0) throw std::invalid_argument("experiment: records == 0");
}

const std::vector<trace::TraceRecord>& ExperimentRunner::trace_for(
    const std::string& app) {
  auto it = traces_.find(app);
  if (it != traces_.end()) return it->second;
  const auto& profile = trace::app_by_name(app);
  auto [pos, inserted] =
      traces_.emplace(app, trace::generate_app_trace(profile, records_));
  return pos->second;
}

SimResult ExperimentRunner::run(const std::string& app, PrefetcherKind kind) {
  const auto& records = trace_for(app);
  auto factory = make_prefetcher_factory(kind, planaria_, bop_, spp_);
  return Simulator::run(config_, std::move(factory),
                        prefetcher_kind_name(kind), records);
}

std::map<std::string, std::map<std::string, SimResult>> ExperimentRunner::sweep(
    const std::vector<PrefetcherKind>& kinds, bool verbose) {
  std::map<std::string, std::map<std::string, SimResult>> out;
  for (const auto& app : trace::app_names()) {
    for (PrefetcherKind kind : kinds) {
      if (verbose) {
        std::fprintf(stderr, "  running %s / %s...\n", app.c_str(),
                     prefetcher_kind_name(kind));
      }
      out[app][prefetcher_kind_name(kind)] = run(app, kind);
    }
  }
  return out;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double geomean_ratio(const std::vector<double>& ratios) {
  if (ratios.empty()) return 0.0;
  double log_sum = 0.0;
  for (double r : ratios) {
    if (r <= 0.0) return 0.0;
    log_sum += std::log(r);
  }
  return std::exp(log_sum / static_cast<double>(ratios.size()));
}

}  // namespace planaria::sim
