#include "sim/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "trace/generator.hpp"

namespace planaria::sim {

std::uint64_t records_from_env(std::uint64_t fallback) {
  const char* env = std::getenv("PLANARIA_RECORDS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || v == 0) {
    throw std::invalid_argument("PLANARIA_RECORDS must be a positive integer");
  }
  return static_cast<std::uint64_t>(v);
}

ExperimentRunner::ExperimentRunner(SimConfig config, std::uint64_t records,
                                   std::size_t threads)
    : config_(config), records_(records) {
  config_.validate();
  if (records_ == 0) throw std::invalid_argument("experiment: records == 0");
  if (threads == 0) throw std::invalid_argument("experiment: threads == 0");
  if (threads > 1) pool_ = std::make_unique<common::ThreadPool>(threads);
  const CheckpointConfig env = CheckpointConfig::from_env();
  checkpoint_dir_ = env.dir;
  checkpoint_every_ = env.every;
}

ExperimentRunner::TraceEntry& ExperimentRunner::entry_for(
    const std::string& app) {
  TraceEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(traces_mutex_);
    entry = &traces_[app];
  }
  std::call_once(entry->once, [&] {
    entry->records = trace::generate_app_trace(trace::app_by_name(app), records_);
    // Build the columnar mirror inside the same once: every later reader
    // (vector or batch) sees both forms complete.
    entry->batch = trace::TraceBatch(entry->records);
  });
  return *entry;
}

const std::vector<trace::TraceRecord>& ExperimentRunner::trace_for(
    const std::string& app) {
  return entry_for(app).records;
}

const trace::TraceBatch& ExperimentRunner::batch_for(const std::string& app) {
  return entry_for(app).batch;
}

void ExperimentRunner::clear_trace_cache() {
  std::lock_guard<std::mutex> lock(traces_mutex_);
  traces_.clear();
}

std::string ExperimentRunner::cell_path(const std::string& app,
                                        const char* kind) const {
  return checkpoint_dir_ + "/cell_" + app + "_" + kind + ".result";
}

bool ExperimentRunner::try_load_cell(const std::string& app, const char* kind,
                                     SimResult& out) const {
  std::error_code ec;
  if (!std::filesystem::exists(cell_path(app, kind), ec)) return false;
  try {
    const auto payload = snapshot::read_file(cell_path(app, kind));
    snapshot::Reader r(payload);
    r.expect_tag(snapshot::tag4("CELL"));
    if (r.u64() != records_ || r.str() != app || r.str() != kind) return false;
    SimResult result;
    result.load_state(r);
    r.require_end();
    if (result.prefetcher != kind) return false;
    out = result;
    return true;
  } catch (const snapshot::SnapshotError&) {
    return false;  // corrupt/mismatched cell file: rerun the cell
  }
}

void ExperimentRunner::store_cell(const std::string& app, const char* kind,
                                  const SimResult& result) const {
  snapshot::Writer w;
  w.tag(snapshot::tag4("CELL"));
  w.u64(records_);
  w.str(app);
  w.str(kind);
  result.save_state(w);
  snapshot::write_file(cell_path(app, kind), w.buffer());
  // The cell is done; its mid-run snapshots are now dead weight.
  CheckpointConfig ckpt;
  ckpt.dir = checkpoint_dir_;
  ckpt.label = std::string("cell_") + app + "_" + kind;
  std::error_code ec;
  std::filesystem::remove(ckpt.current_path(), ec);
  std::filesystem::remove(ckpt.prev_path(), ec);
}

SimResult ExperimentRunner::run_cell(const std::string& app,
                                     PrefetcherKind kind,
                                     const PrefetcherFactory& factory) {
  const auto& batch = batch_for(app);
  // Each cell checkpoints under its own label so concurrent cells on the
  // pool never rotate each other's snapshots. Disabled when the runner has
  // no checkpoint dir or no interval.
  CheckpointConfig ckpt;
  if (!checkpoint_dir_.empty() && checkpoint_every_ > 0) {
    ckpt.dir = checkpoint_dir_;
    ckpt.every = checkpoint_every_;
    ckpt.label = std::string("cell_") + app + "_" + prefetcher_kind_name(kind);
  }
  return run_checkpointed(config_, factory, prefetcher_kind_name(kind),
                          batch, ckpt, pool_.get(), nullptr);
}

SimResult ExperimentRunner::run(const std::string& app, PrefetcherKind kind) {
  return run_cell(app, kind,
                  make_prefetcher_factory(kind, planaria_, bop_, spp_));
}

std::map<std::string, std::map<std::string, SimResult>> ExperimentRunner::sweep(
    const std::vector<PrefetcherKind>& kinds, bool verbose,
    std::vector<FailureReport>* failures) {
  const auto apps = trace::app_names();

  // Factories depend only on (kind, configs): build each once per sweep
  // instead of once per cell, and share them read-only across the grid.
  std::vector<PrefetcherFactory> factories;
  factories.reserve(kinds.size());
  for (PrefetcherKind kind : kinds) {
    factories.push_back(make_prefetcher_factory(kind, planaria_, bop_, spp_));
  }

  // Warm the trace cache with app-level parallel generation first; without
  // this, the first kinds.size() cells (all of app 0) would serialize behind
  // a single generating thread.
  if (pool_) {
    pool_->parallel_for(apps.size(),
                        [&](std::size_t i) { trace_for(apps[i]); });
  }

  // Flatten the grid so the pool can claim cells; results land in a
  // preallocated slot per cell, which keeps the output independent of
  // completion order. Failure slots are likewise per-cell (unique_ptr, one
  // writer each — never a shared vector push from pooled tasks) and compacted
  // in cell order after the join, so the report is deterministic too.
  std::vector<SimResult> results(apps.size() * kinds.size());
  std::vector<std::unique_ptr<FailureReport>> failed(results.size());
  const auto attempt_one = [&](std::size_t i) {
    const std::string& app = apps[i / kinds.size()];
    const std::size_t k = i % kinds.size();
    const char* kind_name = prefetcher_kind_name(kinds[k]);
    // Restarted sweep: a completed cell's persisted result is reloaded
    // verbatim (bit-identical by the snapshot round-trip guarantee) instead
    // of re-simulating; anything unreadable or mismatched falls through to a
    // fresh run.
    if (!checkpoint_dir_.empty() && try_load_cell(app, kind_name, results[i])) {
      if (verbose) {
        std::fprintf(stderr, "  restored %s / %s from checkpoint\n",
                     app.c_str(), kind_name);
      }
      return;
    }
    if (verbose) {
      std::fprintf(stderr, "  running %s / %s...\n", app.c_str(), kind_name);
    }
    results[i] = run_cell(app, kinds[k], factories[k]);
    if (!checkpoint_dir_.empty()) store_cell(app, kind_name, results[i]);
  };
  if (failures == nullptr) {
    // Fast path: the first cell exception propagates exactly as before.
    if (pool_) {
      pool_->parallel_for(results.size(), attempt_one);
    } else {
      for (std::size_t i = 0; i < results.size(); ++i) attempt_one(i);
    }
  } else {
    // Isolated mode: each failing cell is retried under deterministic seeded
    // exponential backoff. "Time" here is a scheduler round counter — the
    // batch sweep's sim-tick analog (the determinism lint bans wall clocks) —
    // and a cell that fails on attempt a is parked for
    // min(kBase << (a-1), kCap) rounds plus a seeded jitter draw, so
    // correlated transients (e.g. memory pressure across pooled cells) are
    // not retried in lockstep. The schedule is a pure function of
    // (cell index, attempt): identical at every thread count and on every
    // rerun. A cell that exhausts kMaxAttempts keeps its slot
    // default-constructed and files one FailureReport (cell order), with its
    // backoff history recorded; every other cell still lands.
    constexpr int kMaxAttempts = 3;
    constexpr std::uint64_t kBackoffBaseRounds = 2;
    constexpr std::uint64_t kBackoffCapRounds = 16;
    constexpr std::uint64_t kBackoffJitterSeed = 0xB0FF'5EEDull;
    std::vector<std::uint8_t> failed_now(results.size(), 0);
    std::vector<std::string> errors(results.size());
    const auto run_isolated = [&](std::size_t i) {
      try {
        attempt_one(i);
        failed_now[i] = 0;
      } catch (const std::exception& e) {
        failed_now[i] = 1;
        errors[i] = e.what();
      }
    };
    const auto backoff_delay = [&](std::size_t i, int attempt) {
      std::uint64_t shift = static_cast<std::uint64_t>(attempt) - 1;
      if (shift > 62) shift = 62;
      std::uint64_t delay = kBackoffBaseRounds << shift;
      if (delay > kBackoffCapRounds) delay = kBackoffCapRounds;
      Rng jitter(kBackoffJitterSeed ^ (i * 0x9E3779B97F4A7C15ull) ^
                 static_cast<std::uint64_t>(attempt));
      return delay + jitter.next_below(kBackoffBaseRounds + 1);
    };
    if (pool_) {
      pool_->parallel_for(results.size(), run_isolated);
    } else {
      for (std::size_t i = 0; i < results.size(); ++i) run_isolated(i);
    }
    std::vector<int> attempts(results.size(), 1);
    std::vector<std::uint64_t> eligible(results.size(), 0);
    std::vector<std::uint64_t> waited(results.size(), 0);
    std::vector<std::size_t> pending;
    std::uint64_t round = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (failed_now[i] == 0) continue;
      const std::uint64_t delay = backoff_delay(i, attempts[i]);
      eligible[i] = round + delay;
      waited[i] += delay;
      pending.push_back(i);
    }
    std::vector<std::size_t> runnable;
    while (!pending.empty()) {
      // Advance straight to the earliest eligible round: idle rounds carry
      // no work, but the skipped wait stays charged to each cell.
      round = eligible[pending.front()];
      for (const std::size_t i : pending) round = std::min(round, eligible[i]);
      runnable.clear();
      for (const std::size_t i : pending) {
        if (eligible[i] <= round) runnable.push_back(i);
      }
      if (pool_) {
        pool_->parallel_for(runnable.size(),
                            [&](std::size_t j) { run_isolated(runnable[j]); });
      } else {
        for (const std::size_t i : runnable) run_isolated(i);
      }
      std::vector<std::size_t> still_pending;
      for (const std::size_t i : pending) {
        if (eligible[i] > round) {
          still_pending.push_back(i);
          continue;
        }
        if (failed_now[i] == 0) continue;
        ++attempts[i];
        if (attempts[i] >= kMaxAttempts) {
          failed[i] = std::make_unique<FailureReport>(FailureReport{
              apps[i / kinds.size()],
              prefetcher_kind_name(kinds[i % kinds.size()]), attempts[i],
              attempts[i] - 1, waited[i], errors[i]});
          continue;
        }
        const std::uint64_t delay = backoff_delay(i, attempts[i]);
        eligible[i] = round + delay;
        waited[i] += delay;
        still_pending.push_back(i);
      }
      pending = std::move(still_pending);
    }
    for (auto& f : failed) {
      if (f != nullptr) failures->push_back(std::move(*f));
    }
  }

  std::map<std::string, std::map<std::string, SimResult>> out;
  for (std::size_t i = 0; i < results.size(); ++i) {
    auto& per_app = out[apps[i / kinds.size()]];
    per_app.try_emplace(prefetcher_kind_name(kinds[i % kinds.size()]),
                        std::move(results[i]));
  }
  return out;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double geomean_ratio(const std::vector<double>& ratios) {
  if (ratios.empty()) return 0.0;
  double log_sum = 0.0;
  for (double r : ratios) {
    if (r <= 0.0) return 0.0;
    log_sum += std::log(r);
  }
  return std::exp(log_sum / static_cast<double>(ratios.size()));
}

}  // namespace planaria::sim
