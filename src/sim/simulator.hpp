// Full-system trace-driven simulator: 4 channels of {SC slice + memory-side
// prefetcher + LPDDR4 controller}, mirroring the paper's Figure 1 skeleton.
//
// Request flow per demand record:
//   1. The record's channel is derived from address bits [11:10] (static
//      segment interleave).
//   2. The channel's DRAM model advances to the arrival time; completed fills
//      install blocks into the SC slice and resolve waiting demand latencies.
//   3. The SC slice is probed. Hits cost sc_hit_latency; misses allocate an
//      MSHR-style in-flight entry and issue a DRAM demand read (reads), or
//      write around to DRAM (writes). A miss on a block already in flight
//      (e.g. covered by a still-airborne prefetch) piggybacks on that fill —
//      a "late prefetch" recovers part of the latency.
//   4. The prefetcher observes the access (learning always on) and may emit
//      prefetch requests, which are deduplicated against cache contents and
//      in-flight fills, then issued to DRAM at prefetch priority.
//
// AMAT is the mean latency of demand reads (hit latency or SC latency + DRAM
// service time). Writes are posted and excluded, as in standard AMAT
// accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/system_cache.hpp"
#include "core/planaria.hpp"
#include "dram/channel.hpp"
#include "prefetch/prefetcher.hpp"
#include "sim/config.hpp"
#include "trace/record.hpp"

namespace planaria::sim {

/// Everything a figure needs from one (app, prefetcher) run.
struct SimResult {
  std::string prefetcher;
  std::uint64_t demand_reads = 0;
  std::uint64_t demand_writes = 0;
  double amat_cycles = 0.0;        ///< mean demand-read latency (mem cycles)
  double sc_hit_rate = 0.0;        ///< demand-read hit rate of the SC
  double prefetch_accuracy = 0.0;
  double prefetch_coverage = 0.0;
  std::uint64_t prefetch_issued = 0;   ///< prefetch fills requested from DRAM
  std::uint64_t prefetch_dropped = 0;  ///< throttled by a saturated channel
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t dram_traffic_blocks = 0;  ///< total DRAM data bursts
  double dram_power_mw = 0.0;
  double sram_power_mw = 0.0;
  double total_power_mw = 0.0;     ///< memory-system power (DRAM + SC + meta)
  double ipc = 0.0;                ///< analytic core model (see CpuModelParams)
  Cycle elapsed = 0;
  std::uint64_t hits_on_slp = 0;   ///< Fig. 9 attribution
  std::uint64_t hits_on_tlp = 0;
  std::uint64_t hits_on_other_pf = 0;
  std::uint64_t pollution_misses = 0;
  std::uint64_t slp_issues = 0;    ///< coordinator decisions (Planaria only)
  std::uint64_t tlp_issues = 0;
  std::uint64_t late_prefetch_merges = 0;  ///< demands that caught an
                                           ///< airborne prefetch (timeliness)
  double data_bus_utilization = 0.0;  ///< busy data-bus cycles / elapsed,
                                      ///< averaged over channels
  std::uint64_t storage_bits = 0;  ///< metadata per channel summed over 4

  double traffic_overhead_vs(const SimResult& baseline) const;
  double amat_reduction_vs(const SimResult& baseline) const;
  double power_increase_vs(const SimResult& baseline) const;
  double ipc_gain_vs(const SimResult& baseline) const;
};

using PrefetcherFactory =
    std::function<std::unique_ptr<prefetch::Prefetcher>(int channel)>;

/// Factory for the named sweep configurations.
PrefetcherFactory make_prefetcher_factory(PrefetcherKind kind,
                                          const core::PlanariaConfig& planaria = {},
                                          const prefetch::BopConfig& bop = {},
                                          const prefetch::SppConfig& spp = {});

class Simulator {
 public:
  Simulator(const SimConfig& config, PrefetcherFactory factory,
            std::string prefetcher_name);

  /// Feeds one demand record; records must arrive in non-decreasing time.
  void step(const trace::TraceRecord& record);

  /// Drains all in-flight traffic and produces the aggregate result.
  SimResult finish();

  /// Convenience: run a whole trace front to back.
  static SimResult run(const SimConfig& config, PrefetcherFactory factory,
                       std::string prefetcher_name,
                       const std::vector<trace::TraceRecord>& records);

  const cache::SystemCache& cache_slice(int channel) const;
  const prefetch::Prefetcher& prefetcher(int channel) const;

 private:
  struct InFlight {
    cache::FillSource source = cache::FillSource::kDemand;
    bool was_prefetch = false;          ///< issued speculatively
    std::vector<Cycle> demand_waiters;  ///< arrival times of merged demands
  };

  struct Channel {
    std::unique_ptr<cache::SystemCache> sc;
    std::unique_ptr<prefetch::Prefetcher> pf;
    std::unique_ptr<dram::DramChannel> dram;
    std::unordered_map<std::uint64_t, InFlight> in_flight;  ///< by local block
  };

  void process_completions(Channel& ch);
  void handle_demand(Channel& ch, const trace::TraceRecord& record);

  SimConfig config_;
  std::string name_;
  std::vector<Channel> channels_;
  std::vector<prefetch::PrefetchRequest> scratch_requests_;

  // Aggregate accounting.
  std::uint64_t demand_reads_ = 0;
  std::uint64_t demand_writes_ = 0;
  double demand_read_latency_sum_ = 0.0;
  std::uint64_t resolved_demand_reads_ = 0;
  std::uint64_t prefetch_issued_ = 0;
  std::uint64_t late_prefetch_merges_ = 0;
  Cycle last_arrival_ = 0;
  bool finished_ = false;
};

}  // namespace planaria::sim
