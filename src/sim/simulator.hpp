// Full-system trace-driven simulator: 4 channels of {SC slice + memory-side
// prefetcher + LPDDR4 controller}, mirroring the paper's Figure 1 skeleton.
//
// Request flow per demand record:
//   1. The record's channel is derived from address bits [11:10] (static
//      segment interleave).
//   2. The channel's DRAM model advances to the arrival time; completed fills
//      install blocks into the SC slice and resolve waiting demand latencies.
//   3. The SC slice is probed. Hits cost sc_hit_latency; misses allocate an
//      MSHR-style in-flight entry and issue a DRAM demand read (reads), or
//      write around to DRAM (writes). A miss on a block already in flight
//      (e.g. covered by a still-airborne prefetch) piggybacks on that fill —
//      a "late prefetch" recovers part of the latency.
//   4. The prefetcher observes the access (learning always on) and may emit
//      prefetch requests, which are deduplicated against cache contents and
//      in-flight fills, then issued to DRAM at prefetch priority.
//
// AMAT is the mean latency of demand reads (hit latency or SC latency + DRAM
// service time). Writes are posted and excluded, as in standard AMAT
// accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/system_cache.hpp"
#include "common/block_map.hpp"
#include "common/small_vector.hpp"
#include "common/thread_pool.hpp"
#include "core/planaria.hpp"
#include "dram/channel.hpp"
#include "prefetch/prefetcher.hpp"
#include "sim/config.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/batch.hpp"
#include "trace/record.hpp"

namespace planaria::sim {

/// Everything a figure needs from one (app, prefetcher) run.
struct SimResult {
  std::string prefetcher;
  std::uint64_t demand_reads = 0;
  std::uint64_t demand_writes = 0;
  double amat_cycles = 0.0;        ///< mean demand-read latency (mem cycles)
  double sc_hit_rate = 0.0;        ///< demand-read hit rate of the SC
  double prefetch_accuracy = 0.0;
  double prefetch_coverage = 0.0;
  std::uint64_t prefetch_issued = 0;   ///< prefetch fills requested from DRAM
  std::uint64_t prefetch_dropped = 0;  ///< throttled by a saturated channel
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t dram_traffic_blocks = 0;  ///< total DRAM data bursts
  double dram_power_mw = 0.0;
  double sram_power_mw = 0.0;
  double total_power_mw = 0.0;     ///< memory-system power (DRAM + SC + meta)
  double ipc = 0.0;                ///< analytic core model (see CpuModelParams)
  Cycle elapsed = 0;
  std::uint64_t hits_on_slp = 0;   ///< Fig. 9 attribution
  std::uint64_t hits_on_tlp = 0;
  std::uint64_t hits_on_other_pf = 0;
  std::uint64_t pollution_misses = 0;
  std::uint64_t slp_issues = 0;    ///< coordinator decisions (Planaria only)
  std::uint64_t tlp_issues = 0;
  std::uint64_t late_prefetch_merges = 0;  ///< demands that caught an
                                           ///< airborne prefetch (timeliness)
  double data_bus_utilization = 0.0;  ///< busy data-bus cycles / elapsed,
                                      ///< averaged over channels
  std::uint64_t storage_bits = 0;  ///< metadata per channel summed over 4

  /// Applied fault-injection counts (all zero unless SimConfig::fault arms a
  /// class). The chaos audit cross-checks these against the contract layer's
  /// violation/recovery tallies; the same seed reproduces the same counts at
  /// any thread count.
  std::uint64_t fault_injected_total = 0;
  std::uint64_t fault_trace_corruptions = 0;
  std::uint64_t fault_slp_flips = 0;
  std::uint64_t fault_tlp_flips = 0;
  std::uint64_t fault_prefetch_drops = 0;
  std::uint64_t fault_prefetch_delays = 0;
  std::uint64_t fault_dram_stalls = 0;

  double traffic_overhead_vs(const SimResult& baseline) const;
  double amat_reduction_vs(const SimResult& baseline) const;
  double power_increase_vs(const SimResult& baseline) const;
  double ipc_gain_vs(const SimResult& baseline) const;

  /// Memberwise equality over every field above. This is the oracle the
  /// determinism gates compare against: the parallel tests, the throughput
  /// bench and the audit's replay/crash stages all require *bit* identity
  /// (doubles included), not approximate agreement.
  friend bool operator==(const SimResult&, const SimResult&) = default;

  /// Sweep cell persistence: a completed cell's result is written to disk and
  /// reloaded verbatim on restart. Doubles travel as IEEE-754 bit patterns,
  /// so a reloaded result compares equal (operator==) to the original.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);
};

using PrefetcherFactory =
    std::function<std::unique_ptr<prefetch::Prefetcher>(int channel)>;

/// Factory for the named sweep configurations.
PrefetcherFactory make_prefetcher_factory(PrefetcherKind kind,
                                          const core::PlanariaConfig& planaria = {},
                                          const prefetch::BopConfig& bop = {},
                                          const prefetch::SppConfig& spp = {});

class Simulator {
 public:
  Simulator(const SimConfig& config, PrefetcherFactory factory,
            std::string prefetcher_name);

  /// Feeds one demand record; records must arrive in non-decreasing time.
  void step(const trace::TraceRecord& record);

  /// Feeds a whole time-ordered trace by pre-sharding it into kChannels
  /// per-channel record streams (channel = address bits [11:10]; no state
  /// crosses channels) and simulating each slice independently — on `pool`
  /// when one is supplied, serially in channel order otherwise. Because every
  /// channel sees exactly the subsequence it would have seen through step()
  /// and all accounting is kept per channel in integer cycles, the merged
  /// result is bit-identical to the serial per-record dispatch in every mode
  /// (see DESIGN.md §9). May be called repeatedly before finish().
  void run_sharded(const std::vector<trace::TraceRecord>& records,
                   common::ThreadPool* pool = nullptr);

  /// Range form of run_sharded, for chunked (checkpointed) execution: feeding
  /// a trace in consecutive [begin, end) slices is bit-identical to feeding
  /// it whole, because each channel sees the same concatenated subsequence
  /// and the ingest decision stream is consumed record-by-record either way.
  void run_sharded(const trace::TraceRecord* begin,
                   const trace::TraceRecord* end,
                   common::ThreadPool* pool = nullptr);

  /// SoA form: consumes records [begin, end) of a columnar TraceBatch
  /// directly, without materializing AoS records in between. Admission,
  /// sharding and per-channel execution are the same code as the record
  /// overloads, so all forms are bit-identical and freely mixable.
  void run_sharded(const trace::TraceBatch& batch, std::size_t begin,
                   std::size_t end, common::ThreadPool* pool = nullptr);
  void run_sharded(const trace::TraceBatch& batch,
                   common::ThreadPool* pool = nullptr);

  /// Drains all in-flight traffic and produces the aggregate result.
  /// Per-channel partials are merged in channel order, so the reduction is
  /// deterministic regardless of how the channels were executed.
  SimResult finish();

  /// Convenience: run a whole trace front to back (sharded; parallel across
  /// channels when `pool` is non-null and has more than one lane).
  static SimResult run(const SimConfig& config, PrefetcherFactory factory,
                       std::string prefetcher_name,
                       const std::vector<trace::TraceRecord>& records,
                       common::ThreadPool* pool = nullptr);

  const cache::SystemCache& cache_slice(int channel) const;
  const prefetch::Prefetcher& prefetcher(int channel) const;

  /// Checkpoint/restore (DESIGN.md §11). Captures mid-run state: the ingest
  /// clock and its fault stream, and per channel the SC slice, the prefetcher
  /// (virtual dispatch covers every kind), the DRAM controller, the channel's
  /// fault streams, the MSHR-style in-flight map (emitted sorted by block so
  /// the encoding is canonical) and the accounting partials. load_state
  /// expects a Simulator freshly built from the *same* SimConfig, factory and
  /// name; the prefetcher name is embedded and checked, and the caller-level
  /// envelope (sim/checkpoint.hpp) fingerprints the trace and the config. A
  /// throwing load leaves the object partially updated — discard it.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  struct InFlight {
    cache::FillSource source = cache::FillSource::kDemand;
    bool was_prefetch = false;  ///< issued speculatively
    /// Arrival times of merged demands. Nearly always 0 or 1 entries (a
    /// second demand to the same airborne block inside its service window is
    /// rare), so the storage is inline — no allocation on the merge path.
    common::SmallVector<Cycle, 2> demand_waiters;
  };

  /// Which monomorphized inner loop drives a channel. Selected once at
  /// construction from the concrete prefetcher type; kGeneric (virtual
  /// dispatch per record) remains for composites and test doubles, and is
  /// always behaviorally identical to the specialized kernels — they differ
  /// only in how on_demand/on_fill are bound.
  enum class ChannelKernel : std::uint8_t {
    kGeneric = 0,
    kNull,
    kBop,
    kSpp,
    kSms,
    kPlanaria,
    kNextLine,
    kStride,
  };

  /// Per-record config values hoisted out of the inner loop: one struct read
  /// per channel run instead of a config_ member load per access.
  struct HotParams {
    Cycle sc_hit_latency = 0;
    int max_prefetches_per_trigger = 0;
    Cycle prefetch_delay_cycles = 0;
    Cycle dram_stall_cycles = 0;
  };

  /// Per-channel accounting partials. Everything is an integer so the
  /// channel-order merge in finish() is exact: summing integer cycle counts
  /// is associative, unlike the floating-point running sum it replaces, which
  /// is what makes sharded execution bit-identical to per-record dispatch.
  struct Accounting {
    std::uint64_t demand_reads = 0;
    std::uint64_t demand_writes = 0;
    Cycle demand_read_latency_sum = 0;  ///< integer mem cycles
    std::uint64_t resolved_demand_reads = 0;
    std::uint64_t prefetch_issued = 0;
    std::uint64_t late_prefetch_merges = 0;
  };

  struct Channel {
    std::unique_ptr<cache::SystemCache> sc;
    std::unique_ptr<prefetch::Prefetcher> pf;
    std::unique_ptr<dram::DramChannel> dram;
    common::BlockMap<InFlight> in_flight;  ///< MSHR table, by local block
    Accounting acct;
    std::vector<prefetch::PrefetchRequest> scratch;  ///< per-channel: shards
                                                     ///< run concurrently
    /// Reused completion buffer for take_completions (hot-alloc: the sink
    /// overload ping-pongs this capacity with the channel's pending buffer).
    std::vector<dram::DramCompletion> done_scratch;
    /// This channel's slice of the current run_sharded call, SoA. A member
    /// (not a per-call local) so its column capacity is reused across chunks.
    trace::TraceBatch shard;
    ChannelKernel kernel = ChannelKernel::kGeneric;
    /// Per-channel fault injector (null when no class is armed). Channel
    /// faults draw from a channel-indexed stream, so injection stays
    /// deterministic however the channels are scheduled.
    std::unique_ptr<fault::FaultInjector> fault;
  };

  /// Applies the armed trace-corruption fault to `rec`, enforces the global
  /// time-order contract, and clamps a regressed arrival back to the running
  /// maximum (the kRecover repair). Shared by step() and run_sharded() so the
  /// ingest decision stream is consumed identically in both paths.
  void corrupt_and_admit(trace::TraceRecord& rec);

  HotParams hot_params() const;
  static ChannelKernel select_kernel(const prefetch::Prefetcher* pf);

  /// Monomorphized per-record pipeline: PF is the channel's concrete
  /// prefetcher type (or prefetch::Prefetcher for the generic kernel), so
  /// on_demand/on_fill bind statically — the leaf classes are final — and
  /// the per-record virtual dispatch disappears from the specialized loops.
  template <typename PF>
  void process_completions_k(Channel& ch, const HotParams& hp);
  template <typename PF>
  void handle_demand_k(Channel& ch, const trace::TraceRecord& record,
                       const HotParams& hp);
  template <typename PF>
  void step_channel_k(Channel& ch, const trace::TraceRecord& record,
                      const HotParams& hp);
  template <typename PF>
  void run_channel_shard_k(Channel& ch);

  void process_completions(Channel& ch);
  void step_channel(Channel& ch, const trace::TraceRecord& record);
  /// Drains ch.shard through the kernel selected at construction.
  void run_channel_shard(Channel& ch);
  /// Runs every channel's shard (on `pool` when supplied) and clears them.
  void run_shards(common::ThreadPool* pool);

  SimConfig config_;
  std::string name_;
  std::vector<Channel> channels_;

  /// Injector for the serial ingest pass (trace corruption); null when no
  /// class is armed.
  std::unique_ptr<fault::FaultInjector> ingest_fault_;

  Cycle last_arrival_ = 0;
  bool finished_ = false;
};

}  // namespace planaria::sim
