#include "sim/checkpoint.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "common/assert.hpp"
#include "io/vfs.hpp"

namespace planaria::sim {

CheckpointConfig CheckpointConfig::from_env() {
  CheckpointConfig ckpt;
  if (const char* dir = std::getenv("PLANARIA_CHECKPOINT_DIR");
      dir != nullptr && *dir != '\0') {
    ckpt.dir = dir;
  }
  if (const char* every = std::getenv("PLANARIA_CHECKPOINT_EVERY");
      every != nullptr && *every != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(every, &end, 10);
    if (end != nullptr && *end == '\0') {
      ckpt.every = static_cast<std::uint64_t>(v);
    }
  }
  return ckpt;
}

const char* recovery_outcome_name(RecoveryReport::Outcome outcome) {
  switch (outcome) {
    case RecoveryReport::Outcome::kColdStart: return "cold-start";
    case RecoveryReport::Outcome::kResumed: return "resumed";
    case RecoveryReport::Outcome::kFellBack: return "fell-back";
  }
  PLANARIA_UNREACHABLE();
}

namespace {

/// Shared sampling core: `record(i)` yields the i-th logical record. Both
/// public overloads funnel here so the vector and columnar fingerprints of
/// the same trace are byte-for-byte the same hash input.
template <typename RecordAt>
std::uint64_t fingerprint_impl(std::size_t n, RecordAt record) {
  // Sample up to ~4096 records at a fixed stride so fingerprinting stays
  // cheap on long traces; the count rides in the low word so traces that
  // differ only in length still get distinct fingerprints.
  constexpr std::size_t kSampleTarget = 4096;
  const std::size_t stride = std::max<std::size_t>(1, n / kSampleTarget);
  snapshot::Writer w;
  for (std::size_t i = 0; i < n; i += stride) {
    const trace::TraceRecord rec = record(i);
    w.u64(rec.address);
    w.u64(rec.arrival);
    w.u8(static_cast<std::uint8_t>(rec.type));
    w.u8(static_cast<std::uint8_t>(rec.device));
  }
  const std::uint32_t crc =
      snapshot::crc32(w.buffer().data(), w.buffer().size());
  return (static_cast<std::uint64_t>(crc) << 32) ^
         static_cast<std::uint64_t>(n);
}

}  // namespace

std::uint64_t trace_fingerprint(
    const std::vector<trace::TraceRecord>& records) {
  return fingerprint_impl(records.size(),
                          [&](std::size_t i) { return records[i]; });
}

std::uint64_t trace_fingerprint(const trace::TraceBatch& batch) {
  return fingerprint_impl(batch.size(),
                          [&](std::size_t i) { return batch.record(i); });
}

namespace {

std::vector<std::uint8_t> encode_checkpoint(const Simulator& sim,
                                            std::uint64_t cursor,
                                            std::uint64_t fingerprint) {
  snapshot::Writer w;
  w.tag(snapshot::tag4("CKPT"));
  w.u64(cursor);
  w.u64(fingerprint);
  sim.save_state(w);
  return w.buffer();
}

}  // namespace

void write_checkpoint(const Simulator& sim, const CheckpointConfig& ckpt,
                      std::uint64_t cursor, std::uint64_t fingerprint) {
  if (ckpt.dir.empty()) {
    throw snapshot::SnapshotError("checkpoint directory is not configured");
  }
  std::error_code ec;
  std::filesystem::create_directories(ckpt.dir, ec);  // best effort
  const std::string current = ckpt.current_path();
  // Rotate last-good before the new write: if the process dies inside
  // write_file, .prev still holds a complete snapshot. The rename goes
  // through the io VFS (directory-entry fsync, storage-fault hooks) and a
  // failure is surfaced, never dropped — callers either propagate it or
  // count it into their RecoveryReport/ServeCounters degraded accounting.
  if (io::exists(current)) {
    try {
      io::rename_file(current, ckpt.prev_path());
    } catch (const io::IoError& e) {
      throw snapshot::SnapshotError("cannot rotate " + current + ": " +
                                    e.what());
    }
  }
  snapshot::write_file(current, encode_checkpoint(sim, cursor, fingerprint));
}

void scrub_snapshot_pair(const std::string& current, const std::string& prev,
                         ScrubReport& report) {
  const std::string paths[] = {current, prev};
  bool good[2] = {false, false};
  bool quarantined[2] = {false, false};
  std::vector<std::uint8_t> payload[2];
  for (int i = 0; i < 2; ++i) {
    if (!io::exists(paths[i])) {
      ++report.missing;
      continue;
    }
    ++report.scanned;
    try {
      payload[i] = snapshot::read_file(paths[i]);
      good[i] = true;
      ++report.intact;
    } catch (const snapshot::SnapshotError& e) {
      // Corrupt: move aside, never delete — the quarantined bytes are the
      // post-mortem evidence of what the storage layer actually did.
      try {
        io::rename_file(paths[i], paths[i] + ".quarantine");
        quarantined[i] = true;
        ++report.quarantined;
        report.notes.push_back(paths[i] + ": " + e.what() +
                               " -> quarantined");
      } catch (const io::IoError& rename_err) {
        report.notes.push_back(paths[i] + ": corrupt but quarantine failed: " +
                               rename_err.what());
      }
    }
  }
  // Repair a quarantined slot from its surviving partner so the pair offers
  // two intact fallback generations again. Slots missing from the start are
  // not fabricated.
  for (int i = 0; i < 2; ++i) {
    const int other = 1 - i;
    if (!quarantined[i] || !good[other]) continue;
    try {
      snapshot::write_file(paths[i], payload[other]);
      ++report.repaired;
      report.notes.push_back(paths[i] + ": repaired from " + paths[other]);
    } catch (const snapshot::SnapshotError& e) {
      report.notes.push_back(paths[i] + ": repair failed: " + e.what());
    }
  }
}

ScrubReport scrub_checkpoints(const CheckpointConfig& ckpt) {
  ScrubReport report;
  scrub_snapshot_pair(ckpt.current_path(), ckpt.prev_path(), report);
  return report;
}

std::uint64_t load_checkpoint(Simulator& sim, const std::string& path,
                              std::uint64_t expected_fingerprint) {
  const std::vector<std::uint8_t> payload = snapshot::read_file(path);
  snapshot::Reader r(payload);
  r.expect_tag(snapshot::tag4("CKPT"));
  const std::uint64_t cursor = r.u64();
  const std::uint64_t fingerprint = r.u64();
  if (fingerprint != expected_fingerprint) {
    throw snapshot::SnapshotError(
        "snapshot was taken against a different trace");
  }
  sim.load_state(r);
  r.require_end();
  return cursor;
}

namespace {

/// Driver shared by the vector and columnar entry points: recovery candidate
/// selection, chunked execution, and checkpoint rotation are identical; only
/// how a [cursor, next) span reaches the simulator differs (`feed`).
template <typename Feed>
SimResult run_checkpointed_impl(const SimConfig& config,
                                PrefetcherFactory factory,
                                std::string prefetcher_name, std::uint64_t n,
                                std::uint64_t fingerprint,
                                const CheckpointConfig& ckpt,
                                RecoveryReport* report, Feed feed) {
  RecoveryReport local;
  RecoveryReport& rep = report != nullptr ? *report : local;
  rep = RecoveryReport{};

  std::unique_ptr<Simulator> sim;
  std::uint64_t cursor = 0;

  if (ckpt.enabled()) {
    const std::string candidates[] = {ckpt.current_path(), ckpt.prev_path()};
    for (std::size_t i = 0; i < 2 && sim == nullptr; ++i) {
      std::error_code ec;
      if (!std::filesystem::exists(candidates[i], ec)) {
        continue;  // never written — a quiet cold start, not a recovery event
      }
      // Fresh simulator per attempt: a throwing load_state leaves the object
      // partially updated, so a rejected candidate's instance is discarded.
      auto attempt = std::make_unique<Simulator>(config, factory,
                                                prefetcher_name);
      try {
        const std::uint64_t at =
            load_checkpoint(*attempt, candidates[i], fingerprint);
        if (at > n) {
          throw snapshot::SnapshotError(
              "snapshot cursor lies beyond the end of the trace");
        }
        cursor = at;
        sim = std::move(attempt);
        rep.outcome = i == 0 ? RecoveryReport::Outcome::kResumed
                             : RecoveryReport::Outcome::kFellBack;
        rep.snapshot_path = candidates[i];
        rep.resumed_cursor = at;
      } catch (const snapshot::SnapshotError& e) {
        rep.notes.push_back(candidates[i] + ": " + e.what());
      }
    }
  }
  if (sim == nullptr) {
    sim = std::make_unique<Simulator>(config, std::move(factory),
                                      std::move(prefetcher_name));
    cursor = 0;
    rep.outcome = RecoveryReport::Outcome::kColdStart;
  }

  const std::uint64_t chunk = ckpt.enabled() ? ckpt.every : n;
  while (cursor < n) {
    const std::uint64_t next = std::min(n, cursor + chunk);
    feed(*sim, cursor, next);
    cursor = next;
    // No checkpoint after the final chunk: the result is about to be
    // returned, and a stale full-run snapshot would poison the next run.
    // A failed checkpoint write (rotation included) is degraded-mode, not
    // fatal: the simulation state in memory is untouched, so the run
    // continues and only resumability is lost — counted and noted, never
    // silent.
    if (ckpt.enabled() && cursor < n) {
      try {
        write_checkpoint(*sim, ckpt, cursor, fingerprint);
      } catch (const snapshot::SnapshotError& e) {
        ++rep.checkpoint_failures;
        rep.notes.push_back("checkpoint at cursor " + std::to_string(cursor) +
                            " failed: " + e.what());
      }
    }
  }
  return sim->finish();
}

}  // namespace

SimResult run_checkpointed(const SimConfig& config, PrefetcherFactory factory,
                           std::string prefetcher_name,
                           const std::vector<trace::TraceRecord>& records,
                           const CheckpointConfig& ckpt,
                           common::ThreadPool* pool, RecoveryReport* report) {
  return run_checkpointed_impl(
      config, std::move(factory), std::move(prefetcher_name), records.size(),
      trace_fingerprint(records), ckpt, report,
      [&records, pool](Simulator& sim, std::uint64_t cursor,
                       std::uint64_t next) {
        sim.run_sharded(records.data() + cursor, records.data() + next, pool);
      });
}

SimResult run_checkpointed(const SimConfig& config, PrefetcherFactory factory,
                           std::string prefetcher_name,
                           const trace::TraceBatch& batch,
                           const CheckpointConfig& ckpt,
                           common::ThreadPool* pool, RecoveryReport* report) {
  return run_checkpointed_impl(
      config, std::move(factory), std::move(prefetcher_name), batch.size(),
      trace_fingerprint(batch), ckpt, report,
      [&batch, pool](Simulator& sim, std::uint64_t cursor,
                     std::uint64_t next) {
        sim.run_sharded(batch, cursor, next, pool);
      });
}

SimResult resume(const SimConfig& config, PrefetcherFactory factory,
                 std::string prefetcher_name,
                 const std::vector<trace::TraceRecord>& records,
                 const std::string& path, common::ThreadPool* pool) {
  Simulator sim(config, std::move(factory), std::move(prefetcher_name));
  const std::uint64_t fingerprint = trace_fingerprint(records);
  const std::uint64_t cursor = load_checkpoint(sim, path, fingerprint);
  if (cursor > records.size()) {
    throw snapshot::SnapshotError(
        "snapshot cursor lies beyond the end of the trace");
  }
  sim.run_sharded(records.data() + cursor,
                  records.data() + records.size(), pool);
  return sim.finish();
}

}  // namespace planaria::sim
