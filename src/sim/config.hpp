// Full-system simulation configuration: Table 1 in one struct.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/system_cache.hpp"
#include "core/planaria.hpp"
#include "dram/config.hpp"
#include "dram/power.hpp"
#include "fault/fault.hpp"
#include "prefetch/bop.hpp"
#include "prefetch/spp.hpp"

namespace planaria::sim {

/// SRAM energy model for the SC slices and prefetcher metadata. Values are
/// CACTI-class estimates for 7nm SRAM; as with the DRAM power model, the
/// evaluation consumes relative deltas.
struct SramPowerParams {
  double e_sc_access_nj = 0.15;    ///< one 64B read/write of a 1MB slice
  double e_meta_probe_nj = 0.004;  ///< one prefetcher table probe
  double meta_probes_per_access = 3.0;  ///< FT+AT+PT / ST+PT style pipelines
  double leak_mw_per_mb = 8.0;     ///< leakage per MB of SRAM
  double clock_ghz = 1.6;

  void validate() const {
    if (e_sc_access_nj < 0 || e_meta_probe_nj < 0 || meta_probes_per_access < 0 ||
        leak_mw_per_mb < 0 || clock_ghz <= 0) {
      throw std::invalid_argument("sram power params must be non-negative");
    }
  }
};

/// Analytic core model converting demand AMAT into IPC (substitute for the
/// paper's RTL performance evaluation; see DESIGN.md). The trace carries no
/// instruction stream, so the model assumes a fixed instruction count per SC
/// access and an overlap factor for memory-level parallelism.
struct CpuModelParams {
  double instructions_per_access = 8.0;  ///< instr retired per SC access
  double base_cpi = 0.6;                 ///< CPI when memory never stalls
  double stall_overlap = 0.85;   ///< fraction of AMAT that stalls the core
  double cpu_clock_ghz = 2.6;    ///< Cortex-A76 big cluster
  double mem_clock_ghz = 1.6;    ///< controller clock (AMAT is in these)

  void validate() const {
    if (instructions_per_access <= 0 || base_cpi <= 0 || stall_overlap < 0 ||
        stall_overlap > 1 || cpu_clock_ghz <= 0 || mem_clock_ghz <= 0) {
      throw std::invalid_argument("cpu model params out of range");
    }
  }
};

struct SimConfig {
  cache::CacheConfig cache;      ///< per-channel slice (1MB of the 4MB SC)
  dram::DramConfig dram;
  dram::PowerParams dram_power;
  SramPowerParams sram_power;
  CpuModelParams cpu;
  Cycle sc_hit_latency = 24;     ///< SC lookup + data return (15ns)
  int max_prefetches_per_trigger = 16;
  /// Fault-injection plan (src/fault). The default injects nothing, and a
  /// simulator built from an all-zero plan allocates no injectors at all —
  /// zero-fault runs stay bit-identical to builds without this field.
  fault::FaultPlan fault;

  void validate() const {
    cache.validate();
    dram.validate();
    dram_power.validate();
    sram_power.validate();
    cpu.validate();
    fault.validate();
    if (sc_hit_latency == 0 || max_prefetches_per_trigger <= 0) {
      throw std::invalid_argument("sim config: latency/limits must be positive");
    }
  }
};

/// Named prefetcher configurations the experiments sweep over.
enum class PrefetcherKind {
  kNone,
  kBop,
  kSpp,
  kSms,
  kPlanaria,
  kPlanariaSlpOnly,
  kPlanariaTlpOnly,
  kSerialComposite,    ///< TPC-style coordinator over SLP+TLP (§7 ablation)
  kParallelComposite,  ///< ISB-style coordinator over SLP+TLP (§7 ablation)
  kNextLine,
  kStride,
};

const char* prefetcher_kind_name(PrefetcherKind kind);
PrefetcherKind prefetcher_kind_from_name(const std::string& name);

/// Every registered kind, in sweep order; planaria-audit instantiates and
/// gates each one.
const std::vector<PrefetcherKind>& all_prefetcher_kinds();

}  // namespace planaria::sim
