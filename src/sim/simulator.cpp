#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/contract.hpp"
#include "common/assert.hpp"
#include "core/coordinators.hpp"
#include "prefetch/bop.hpp"
#include "prefetch/simple.hpp"
#include "prefetch/sms.hpp"
#include "prefetch/spp.hpp"
#include "sim/checkpoint.hpp"

namespace planaria::sim {

const char* prefetcher_kind_name(PrefetcherKind kind) {
  switch (kind) {
    case PrefetcherKind::kNone: return "none";
    case PrefetcherKind::kBop: return "bop";
    case PrefetcherKind::kSpp: return "spp";
    case PrefetcherKind::kSms: return "sms";
    case PrefetcherKind::kPlanaria: return "planaria";
    case PrefetcherKind::kPlanariaSlpOnly: return "planaria-slp";
    case PrefetcherKind::kPlanariaTlpOnly: return "planaria-tlp";
    case PrefetcherKind::kSerialComposite: return "serial";
    case PrefetcherKind::kParallelComposite: return "parallel";
    case PrefetcherKind::kNextLine: return "next-line";
    case PrefetcherKind::kStride: return "stride";
  }
  PLANARIA_UNREACHABLE();
}

PrefetcherKind prefetcher_kind_from_name(const std::string& name) {
  for (PrefetcherKind k : all_prefetcher_kinds()) {
    if (name == prefetcher_kind_name(k)) return k;
  }
  throw std::invalid_argument("unknown prefetcher kind: " + name);
}

/// Every registered kind, in sweep order; audit tooling iterates this.
const std::vector<PrefetcherKind>& all_prefetcher_kinds() {
  static const std::vector<PrefetcherKind> kinds = {
      PrefetcherKind::kNone,          PrefetcherKind::kBop,
      PrefetcherKind::kSpp,           PrefetcherKind::kSms,
      PrefetcherKind::kPlanaria,      PrefetcherKind::kPlanariaSlpOnly,
      PrefetcherKind::kPlanariaTlpOnly, PrefetcherKind::kSerialComposite,
      PrefetcherKind::kParallelComposite, PrefetcherKind::kNextLine,
      PrefetcherKind::kStride};
  return kinds;
}

PrefetcherFactory make_prefetcher_factory(PrefetcherKind kind,
                                          const core::PlanariaConfig& planaria,
                                          const prefetch::BopConfig& bop,
                                          const prefetch::SppConfig& spp) {
  switch (kind) {
    case PrefetcherKind::kNone:
      return [](int) { return std::make_unique<prefetch::NullPrefetcher>(); };
    case PrefetcherKind::kBop:
      return [bop](int) {
        return std::make_unique<prefetch::BestOffsetPrefetcher>(bop);
      };
    case PrefetcherKind::kSpp:
      return [spp](int) {
        return std::make_unique<prefetch::SignaturePathPrefetcher>(spp);
      };
    case PrefetcherKind::kSms:
      return [](int) { return std::make_unique<prefetch::SmsPrefetcher>(); };
    case PrefetcherKind::kPlanaria:
      return [planaria](int) {
        return std::make_unique<core::PlanariaPrefetcher>(planaria);
      };
    case PrefetcherKind::kPlanariaSlpOnly:
      return [planaria](int) {
        core::PlanariaConfig c = planaria;
        c.enable_tlp = false;
        c.enable_slp = true;
        return std::make_unique<core::PlanariaPrefetcher>(c);
      };
    case PrefetcherKind::kPlanariaTlpOnly:
      return [planaria](int) {
        core::PlanariaConfig c = planaria;
        c.enable_slp = false;
        c.enable_tlp = true;
        return std::make_unique<core::PlanariaPrefetcher>(c);
      };
    case PrefetcherKind::kSerialComposite:
      return [planaria](int) {
        core::SerialCoordinatorConfig c;
        c.slp = planaria.slp;
        c.tlp = planaria.tlp;
        return std::make_unique<core::SerialComposite>(c);
      };
    case PrefetcherKind::kParallelComposite:
      return [planaria](int) {
        core::ParallelCoordinatorConfig c;
        c.slp = planaria.slp;
        c.tlp = planaria.tlp;
        return std::make_unique<core::ParallelComposite>(c);
      };
    case PrefetcherKind::kNextLine:
      return [](int) { return std::make_unique<prefetch::NextLinePrefetcher>(); };
    case PrefetcherKind::kStride:
      return [](int) { return std::make_unique<prefetch::StridePrefetcher>(); };
  }
  PLANARIA_UNREACHABLE();
}

Simulator::Simulator(const SimConfig& config, PrefetcherFactory factory,
                     std::string prefetcher_name)
    : config_(config), name_(std::move(prefetcher_name)) {
  config_.validate();
  if (!factory) throw std::invalid_argument("simulator: null prefetcher factory");
  // Injectors exist only when a fault class is armed: a disabled plan leaves
  // every fault pointer null, so the zero-fault hot path pays one pointer
  // test per hook and stays bit-identical to the pre-fault pipeline.
  const bool faults_armed = config_.fault.any_enabled();
  if (faults_armed) {
    ingest_fault_ = std::make_unique<fault::FaultInjector>(
        config_.fault, fault::FaultInjector::kIngestStream);
  }
  channels_.reserve(kChannels);
  for (int c = 0; c < kChannels; ++c) {
    Channel ch;
    cache::CacheConfig slice = config_.cache;
    slice.seed = config_.cache.seed + static_cast<std::uint64_t>(c);
    ch.sc = std::make_unique<cache::SystemCache>(slice);
    ch.pf = factory(c);
    ch.dram = std::make_unique<dram::DramChannel>(config_.dram);
    if (faults_armed) {
      ch.fault = std::make_unique<fault::FaultInjector>(
          config_.fault, static_cast<std::uint64_t>(c));
      ch.pf->set_fault_injector(ch.fault.get());
    }
    ch.kernel = select_kernel(ch.pf.get());
    channels_.push_back(std::move(ch));
  }
}

Simulator::ChannelKernel Simulator::select_kernel(
    const prefetch::Prefetcher* pf) {
  // One dynamic_cast chain per channel per run — never per record. Each
  // matched type is final, so the kernel instantiated for it binds
  // on_demand/on_fill statically. Composites (Serial/ParallelComposite) and
  // any type registered by tests fall through to the generic virtual loop.
  if (dynamic_cast<const core::PlanariaPrefetcher*>(pf) != nullptr) {
    return ChannelKernel::kPlanaria;
  }
  if (dynamic_cast<const prefetch::NullPrefetcher*>(pf) != nullptr) {
    return ChannelKernel::kNull;
  }
  if (dynamic_cast<const prefetch::BestOffsetPrefetcher*>(pf) != nullptr) {
    return ChannelKernel::kBop;
  }
  if (dynamic_cast<const prefetch::SignaturePathPrefetcher*>(pf) != nullptr) {
    return ChannelKernel::kSpp;
  }
  if (dynamic_cast<const prefetch::SmsPrefetcher*>(pf) != nullptr) {
    return ChannelKernel::kSms;
  }
  if (dynamic_cast<const prefetch::NextLinePrefetcher*>(pf) != nullptr) {
    return ChannelKernel::kNextLine;
  }
  if (dynamic_cast<const prefetch::StridePrefetcher*>(pf) != nullptr) {
    return ChannelKernel::kStride;
  }
  return ChannelKernel::kGeneric;
}

Simulator::HotParams Simulator::hot_params() const {
  return HotParams{config_.sc_hit_latency, config_.max_prefetches_per_trigger,
                   config_.fault.prefetch_delay_cycles,
                   config_.fault.dram_stall_cycles};
}

template <typename PF>
void Simulator::process_completions_k(Channel& ch, const HotParams& hp) {
  if (!ch.dram->has_completions()) return;  // common case: nothing landed
  ch.dram->take_completions(ch.done_scratch);
  for (const auto& done : ch.done_scratch) {
    if (done.is_write) continue;  // posted; nothing waits on write data
    const std::uint64_t block = done.tag;
    InFlight* hit = ch.in_flight.find(block);
    if (hit == nullptr) continue;  // e.g. forwarded writeback race
    InFlight& fly = *hit;

    // Resolve every demand that merged onto this fill.
    for (const Cycle waiter_arrival : fly.demand_waiters) {
      const Cycle dram_part =
          done.finish > waiter_arrival ? done.finish - waiter_arrival : 0;
      ch.acct.demand_read_latency_sum += hp.sc_hit_latency + dram_part;
      ++ch.acct.resolved_demand_reads;
    }

    // A prefetch that a demand caught up with no longer counts as
    // speculative for accounting: the demand was already charged the miss.
    const bool consumed = !fly.demand_waiters.empty();
    const cache::FillSource source =
        consumed ? cache::FillSource::kDemand : fly.source;
    const auto fill = ch.sc->fill(block, source);
    if (fill.has_writeback) {
      dram::DramRequest wb;
      wb.local_block = fill.writeback_block;
      wb.arrival = std::max(ch.dram->now(), done.finish);
      wb.is_write = true;
      wb.tag = fill.writeback_block;
      ch.dram->submit(wb);
    }
    static_cast<PF&>(*ch.pf).on_fill(
        block, fly.source != cache::FillSource::kDemand, done.finish);
    ch.in_flight.erase(block);
  }
}

template <typename PF>
void Simulator::handle_demand_k(Channel& ch, const trace::TraceRecord& record,
                                const HotParams& hp) {
  const std::uint64_t block = dram::AddressMapper::local_block(record.address);
  const auto result = ch.sc->access(block, record.type);

  if (record.type == AccessType::kRead) {
    ++ch.acct.demand_reads;
    if (result.hit) {
      ch.acct.demand_read_latency_sum += hp.sc_hit_latency;
      ++ch.acct.resolved_demand_reads;
    } else if (InFlight* fly = ch.in_flight.find(block); fly != nullptr) {
      // Merge with the airborne fill (hit under miss / late prefetch).
      if (fly->was_prefetch) ++ch.acct.late_prefetch_merges;
      fly->demand_waiters.push_back(record.arrival);
    } else {
      dram::DramRequest req;
      req.local_block = block;
      req.arrival = record.arrival;
      req.tag = block;
      ch.dram->submit(req);
      ch.in_flight.insert(
          block,
          InFlight{cache::FillSource::kDemand, false, {record.arrival}});
    }
  } else {
    ++ch.acct.demand_writes;
    if (!result.hit) {
      // Write-around: the burst goes to DRAM.
      dram::DramRequest req;
      req.local_block = block;
      req.arrival = record.arrival;
      req.is_write = true;
      req.tag = block;
      ch.dram->submit(req);
    }
  }

  // Prefetcher observes everything (learning is never gated).
  prefetch::DemandEvent event;
  event.local_block = block;
  event.page = addr::page_number(record.address);
  event.block_in_segment = addr::block_in_segment(record.address);
  event.now = record.arrival;
  event.type = record.type;
  event.device = record.device;
  event.sc_hit = result.hit;
  event.hit_was_prefetch = result.first_use_of_prefetch;

  ch.scratch.clear();
  static_cast<PF&>(*ch.pf).on_demand(event, ch.scratch);

  int issued_this_trigger = 0;
  for (const auto& pf : ch.scratch) {
    if (issued_this_trigger >= hp.max_prefetches_per_trigger) break;
    const std::uint64_t target = pf.local_block;
    if (target == block) continue;
    if (ch.sc->contains(target)) continue;
    if (ch.in_flight.contains(target)) continue;
    // Fault hooks fire only for prefetches that survived deduplication — the
    // ones that would actually reach the channel. A dropped prefetch takes
    // the same exit as a saturated-queue drop (no issue accounting, no
    // in-flight entry); a delayed one issues late by a fixed interval.
    Cycle issue_at = record.arrival;
    if (ch.fault != nullptr) {
      if (ch.fault->roll(fault::FaultClass::kPrefetchDrop)) {
        ch.fault->record(fault::FaultClass::kPrefetchDrop);
        continue;
      }
      if (ch.fault->roll(fault::FaultClass::kPrefetchDelay)) {
        ch.fault->record(fault::FaultClass::kPrefetchDelay);
        issue_at += hp.prefetch_delay_cycles;
      }
    }
    dram::DramRequest req;
    req.local_block = target;
    req.arrival = issue_at;
    req.is_prefetch = true;
    req.tag = target;
    if (!ch.dram->submit(req)) continue;  // dropped: channel saturated
    ch.in_flight.insert(target, InFlight{pf.source, true, {}});
    ++ch.acct.prefetch_issued;
    ++issued_this_trigger;
  }
  // The per-trigger degree cap is the throttle the paper's traffic numbers
  // assume; overshooting it would silently inflate every prefetcher's issue
  // rate.
  PLANARIA_ENSURE_MSG(kCoordinatorExclusivity,
                      issued_this_trigger <= hp.max_prefetches_per_trigger,
                      "prefetch degree cap exceeded on one trigger");
}

template <typename PF>
void Simulator::step_channel_k(Channel& ch, const trace::TraceRecord& record,
                               const HotParams& hp) {
  if (ch.fault != nullptr && ch.fault->roll(fault::FaultClass::kDramStall)) {
    ch.dram->inject_stall(hp.dram_stall_cycles);
    ch.fault->record(fault::FaultClass::kDramStall);
  }
  ch.dram->advance(record.arrival);
  process_completions_k<PF>(ch, hp);
  handle_demand_k<PF>(ch, record, hp);
}

void Simulator::process_completions(Channel& ch) {
  process_completions_k<prefetch::Prefetcher>(ch, hot_params());
}

void Simulator::step_channel(Channel& ch, const trace::TraceRecord& record) {
  step_channel_k<prefetch::Prefetcher>(ch, record, hot_params());
}

template <typename PF>
void Simulator::run_channel_shard_k(Channel& ch) {
  const HotParams hp = hot_params();
  const std::size_t n = ch.shard.size();
  const Address* addresses = ch.shard.addresses();
  const Cycle* arrivals = ch.shard.arrivals();
  const std::uint8_t* meta = ch.shard.meta();
  for (std::size_t i = 0; i < n; ++i) {
    const trace::TraceRecord rec{addresses[i], arrivals[i],
                                 trace::TraceBatch::meta_type(meta[i]),
                                 trace::TraceBatch::meta_device(meta[i])};
    step_channel_k<PF>(ch, rec, hp);
  }
}

void Simulator::run_channel_shard(Channel& ch) {
  switch (ch.kernel) {
    case ChannelKernel::kNull:
      run_channel_shard_k<prefetch::NullPrefetcher>(ch);
      return;
    case ChannelKernel::kBop:
      run_channel_shard_k<prefetch::BestOffsetPrefetcher>(ch);
      return;
    case ChannelKernel::kSpp:
      run_channel_shard_k<prefetch::SignaturePathPrefetcher>(ch);
      return;
    case ChannelKernel::kSms:
      run_channel_shard_k<prefetch::SmsPrefetcher>(ch);
      return;
    case ChannelKernel::kPlanaria:
      run_channel_shard_k<core::PlanariaPrefetcher>(ch);
      return;
    case ChannelKernel::kNextLine:
      run_channel_shard_k<prefetch::NextLinePrefetcher>(ch);
      return;
    case ChannelKernel::kStride:
      run_channel_shard_k<prefetch::StridePrefetcher>(ch);
      return;
    case ChannelKernel::kGeneric:
      run_channel_shard_k<prefetch::Prefetcher>(ch);
      return;
  }
  PLANARIA_UNREACHABLE();
}

void Simulator::corrupt_and_admit(trace::TraceRecord& rec) {
  // The corruption regresses the arrival strictly below the running maximum
  // (next_below(last_arrival_) < last_arrival_), so every applied injection
  // fires the time-order contract exactly once — the chaos audit's
  // injected == violations equality depends on that. The first record (time
  // zero) has nothing to regress below and is exempt before the roll, keeping
  // the decision-stream consumption identical between step() and
  // run_sharded() paths.
  if (ingest_fault_ != nullptr && last_arrival_ > 0 &&
      ingest_fault_->roll(fault::FaultClass::kTraceCorruption)) {
    rec.arrival = ingest_fault_->rng(fault::FaultClass::kTraceCorruption)
                      .next_below(last_arrival_);
    ingest_fault_->record(fault::FaultClass::kTraceCorruption);
  }
  PLANARIA_REQUIRE_MSG(kTimingMonotonicity, rec.arrival >= last_arrival_,
                       "trace records must be time-ordered");
  // Recovery (kRecover mode reaches here; kAbort never returns from the
  // contract): clamp the regressed arrival to the running maximum so
  // downstream per-channel monotonicity holds by construction.
  if (rec.arrival < last_arrival_) rec.arrival = last_arrival_;
  last_arrival_ = rec.arrival;
}

void Simulator::step(const trace::TraceRecord& record) {
  PLANARIA_REQUIRE_MSG(kTimingMonotonicity, !finished_,
                       "step() after finish()");
  trace::TraceRecord rec = record;
  corrupt_and_admit(rec);
  step_channel(
      channels_[static_cast<std::size_t>(addr::channel_of(rec.address))],
      rec);
}

void Simulator::run_sharded(const std::vector<trace::TraceRecord>& records,
                            common::ThreadPool* pool) {
  run_sharded(records.data(), records.data() + records.size(), pool);
}

void Simulator::run_sharded(const trace::TraceRecord* begin,
                            const trace::TraceRecord* end,
                            common::ThreadPool* pool) {
  PLANARIA_REQUIRE_MSG(kTimingMonotonicity, !finished_,
                       "run_sharded() after finish()");
  if (begin == end) return;
  const std::size_t count = static_cast<std::size_t>(end - begin);

  // One pass replaces the per-record addr::channel_of dispatch: apply ingest
  // faults and validate the global time order once (corrupt_and_admit, the
  // same serial admission step() uses), then split into per-channel SoA
  // shards. Each shard is a subsequence of a non-decreasing (post-clamp)
  // sequence, so per-channel monotonicity is inherited. The shard columns
  // live in the Channel so their capacity persists across batches — after
  // the first chunk the admission loop allocates nothing.
  for (auto& ch : channels_) {
    ch.shard.clear();
    ch.shard.reserve(count / static_cast<std::size_t>(kChannels) + 1);
  }
  for (const trace::TraceRecord* p = begin; p != end; ++p) {
    trace::TraceRecord rec = *p;
    corrupt_and_admit(rec);
    channels_[static_cast<std::size_t>(addr::channel_of(rec.address))]
        .shard.push_back(rec);
  }
  run_shards(pool);
}

void Simulator::run_sharded(const trace::TraceBatch& batch, std::size_t begin,
                            std::size_t end, common::ThreadPool* pool) {
  PLANARIA_REQUIRE_MSG(kTimingMonotonicity, !finished_,
                       "run_sharded() after finish()");
  PLANARIA_REQUIRE_MSG(kTimingMonotonicity,
                       begin <= end && end <= batch.size(),
                       "run_sharded() batch span out of range");
  if (begin == end) return;
  const std::size_t count = end - begin;

  for (auto& ch : channels_) {
    ch.shard.clear();
    ch.shard.reserve(count / static_cast<std::size_t>(kChannels) + 1);
  }
  // Columnar admission: the batch's columns stream sequentially; each record
  // is materialized once for corruption/admission and lands directly in its
  // channel's SoA shard.
  const Address* addresses = batch.addresses();
  const Cycle* arrivals = batch.arrivals();
  const std::uint8_t* meta = batch.meta();
  for (std::size_t i = begin; i < end; ++i) {
    trace::TraceRecord rec{addresses[i], arrivals[i],
                           trace::TraceBatch::meta_type(meta[i]),
                           trace::TraceBatch::meta_device(meta[i])};
    corrupt_and_admit(rec);
    channels_[static_cast<std::size_t>(addr::channel_of(rec.address))]
        .shard.push_back(rec);
  }
  run_shards(pool);
}

void Simulator::run_sharded(const trace::TraceBatch& batch,
                            common::ThreadPool* pool) {
  run_sharded(batch, 0, batch.size(), pool);
}

void Simulator::run_shards(common::ThreadPool* pool) {
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(static_cast<std::size_t>(kChannels), [&](std::size_t c) {
      run_channel_shard(channels_[c]);
    });
  } else {
    for (auto& ch : channels_) run_channel_shard(ch);
  }
}

SimResult Simulator::finish() {
  PLANARIA_REQUIRE_MSG(kTimingMonotonicity, !finished_,
                       "finish() called twice");
  finished_ = true;

  SimResult r;
  r.prefetcher = name_;
  std::uint64_t demand_hits = 0;
  std::uint64_t demand_accesses = 0;
  std::uint64_t useful_pf = 0;
  std::uint64_t pf_fills = 0;
  double dram_energy_nj = 0.0;
  double sram_dynamic_nj = 0.0;
  const dram::PowerModel dram_power(config_.dram_power);

  for (auto& ch : channels_) {
    // Let every channel run to the same horizon so background power is
    // comparable, then drain stragglers.
    ch.dram->advance(last_arrival_);
    ch.dram->drain();
    process_completions(ch);
    // Any still-unresolved in-flight entries would indicate lost completions.
    // Unordered visitation is safe: this is an order-independent check and
    // no value leaves the callback.
    ch.in_flight.for_each([](std::uint64_t, const InFlight& fly) {
      PLANARIA_ENSURE_MSG(kTimingMonotonicity, fly.demand_waiters.empty(),
                          "demand read never completed");
    });
    ch.in_flight.clear();

    const auto& cs = ch.sc->stats();
    demand_hits += cs.demand_hits;
    demand_accesses += cs.demand_accesses;
    useful_pf += cs.demand_hits_on_prefetch;
    pf_fills += cs.prefetch_fills;
    r.hits_on_slp += cs.hits_on_slp;
    r.hits_on_tlp += cs.hits_on_tlp;
    r.hits_on_other_pf += cs.hits_on_other_pf;
    r.pollution_misses += cs.pollution_misses;

    const auto& dc = ch.dram->counters();
    r.dram_reads += dc.reads + dc.forwarded_reads;
    r.dram_writes += dc.writes;
    r.prefetch_dropped += dc.prefetch_drops;
    r.elapsed = std::max(r.elapsed, dc.elapsed);
    if (dc.elapsed > 0) {
      r.data_bus_utilization += static_cast<double>(dc.busy_data_cycles) /
                                static_cast<double>(dc.elapsed) /
                                static_cast<double>(kChannels);
    }
    dram_energy_nj += dram_power.energy_nj(dc);

    sram_dynamic_nj +=
        static_cast<double>(cs.demand_accesses + cs.write_hits +
                            cs.write_misses + cs.prefetch_fills) *
        config_.sram_power.e_sc_access_nj;
    sram_dynamic_nj += static_cast<double>(cs.demand_accesses) *
                       config_.sram_power.meta_probes_per_access *
                       config_.sram_power.e_meta_probe_nj;

    if (const auto* planaria =
            dynamic_cast<const core::PlanariaPrefetcher*>(ch.pf.get());
        planaria != nullptr) {
      r.slp_issues += planaria->stats().slp_issues;
      r.tlp_issues += planaria->stats().tlp_issues;
    }
    r.storage_bits += ch.pf->storage_bits();

    if (ch.fault != nullptr) {
      r.fault_slp_flips += ch.fault->injected(fault::FaultClass::kSlpPatternFlip);
      r.fault_tlp_flips += ch.fault->injected(fault::FaultClass::kTlpPatternFlip);
      r.fault_prefetch_drops +=
          ch.fault->injected(fault::FaultClass::kPrefetchDrop);
      r.fault_prefetch_delays +=
          ch.fault->injected(fault::FaultClass::kPrefetchDelay);
      r.fault_dram_stalls += ch.fault->injected(fault::FaultClass::kDramStall);
    }
  }
  if (ingest_fault_ != nullptr) {
    r.fault_trace_corruptions =
        ingest_fault_->injected(fault::FaultClass::kTraceCorruption);
  }
  r.fault_injected_total = r.fault_trace_corruptions + r.fault_slp_flips +
                           r.fault_tlp_flips + r.fault_prefetch_drops +
                           r.fault_prefetch_delays + r.fault_dram_stalls;

  // Post-join reduction: channels may have been simulated concurrently, but
  // the partials are merged here in channel order after the horizon sync
  // above, and the demand accounting is integer (cycle sums, not floating
  // point), so the result is independent of execution order.
  Accounting total;
  for (const auto& ch : channels_) {
    total.demand_reads += ch.acct.demand_reads;
    total.demand_writes += ch.acct.demand_writes;
    total.demand_read_latency_sum += ch.acct.demand_read_latency_sum;
    total.resolved_demand_reads += ch.acct.resolved_demand_reads;
    total.prefetch_issued += ch.acct.prefetch_issued;
    total.late_prefetch_merges += ch.acct.late_prefetch_merges;
  }

  r.demand_reads = total.demand_reads;
  r.demand_writes = total.demand_writes;
  r.sc_hit_rate = demand_accesses == 0
                      ? 0.0
                      : static_cast<double>(demand_hits) /
                            static_cast<double>(demand_accesses);
  r.amat_cycles = total.resolved_demand_reads == 0
                      ? 0.0
                      : static_cast<double>(total.demand_read_latency_sum) /
                            static_cast<double>(total.resolved_demand_reads);
  r.prefetch_issued = total.prefetch_issued;
  r.late_prefetch_merges = total.late_prefetch_merges;
  r.prefetch_accuracy =
      pf_fills == 0 ? 0.0
                    : static_cast<double>(useful_pf) / static_cast<double>(pf_fills);
  const auto cov_denom = useful_pf + (demand_accesses - demand_hits);
  r.prefetch_coverage =
      cov_denom == 0 ? 0.0
                     : static_cast<double>(useful_pf) / static_cast<double>(cov_denom);
  r.dram_traffic_blocks = r.dram_reads + r.dram_writes;

  // Power: DRAM energy + SC/metadata dynamic energy over elapsed time, plus
  // SRAM leakage for the SC slices and the prefetcher metadata.
  const double seconds = static_cast<double>(r.elapsed) /
                         (config_.sram_power.clock_ghz * 1e9);
  if (seconds > 0.0) {
    r.dram_power_mw = dram_energy_nj * 1e-9 / seconds * 1e3;
    const double sc_mb = static_cast<double>(config_.cache.size_bytes) *
                         kChannels / (1024.0 * 1024.0);
    const double meta_mb = static_cast<double>(r.storage_bits) / 8.0 /
                           (1024.0 * 1024.0);
    const double leak_mw =
        (sc_mb + meta_mb) * config_.sram_power.leak_mw_per_mb;
    r.sram_power_mw = sram_dynamic_nj * 1e-9 / seconds * 1e3 + leak_mw;
    r.total_power_mw = r.dram_power_mw + r.sram_power_mw;
  }

  // Analytic IPC (see CpuModelParams): exec cycles + exposed memory stalls.
  const auto& cpu = config_.cpu;
  const double instr =
      static_cast<double>(demand_accesses) * cpu.instructions_per_access;
  if (instr > 0.0) {
    const double amat_cpu_cycles =
        r.amat_cycles * cpu.cpu_clock_ghz / cpu.mem_clock_ghz;
    const double cycles =
        instr * cpu.base_cpi + static_cast<double>(total.demand_reads) *
                                   amat_cpu_cycles * cpu.stall_overlap;
    r.ipc = instr / cycles;
  }
  return r;
}

SimResult Simulator::run(const SimConfig& config, PrefetcherFactory factory,
                         std::string prefetcher_name,
                         const std::vector<trace::TraceRecord>& records,
                         common::ThreadPool* pool) {
  // Checkpointing is env-opt-in (PLANARIA_CHECKPOINT_DIR/_EVERY); with it off
  // run_checkpointed degenerates to the plain construct/run/finish sequence.
  return run_checkpointed(config, std::move(factory),
                          std::move(prefetcher_name), records,
                          CheckpointConfig::from_env(), pool, nullptr);
}

void Simulator::save_state(snapshot::Writer& w) const {
  PLANARIA_REQUIRE_MSG(kTimingMonotonicity, !finished_,
                       "save_state() after finish()");
  w.tag(snapshot::tag4("SIMU"));
  w.str(name_);
  w.u64(last_arrival_);
  w.b(ingest_fault_ != nullptr);
  if (ingest_fault_ != nullptr) ingest_fault_->save_state(w);
  for (const Channel& ch : channels_) {
    ch.sc->save_state(w);
    ch.pf->save_state(w);
    ch.dram->save_state(w);
    w.b(ch.fault != nullptr);
    if (ch.fault != nullptr) ch.fault->save_state(w);
    // MSHR map, sorted by block so the encoding is canonical (keys are
    // collected from the unordered table, then sorted).
    std::vector<std::uint64_t> blocks;
    blocks.reserve(ch.in_flight.size());
    ch.in_flight.for_each(
        [&](std::uint64_t block, const InFlight&) { blocks.push_back(block); });
    std::sort(blocks.begin(), blocks.end());
    w.u64(static_cast<std::uint64_t>(blocks.size()));
    for (std::uint64_t block : blocks) {
      const InFlight& fly = *ch.in_flight.find(block);
      w.u64(block);
      w.u8(static_cast<std::uint8_t>(fly.source));
      w.b(fly.was_prefetch);
      w.u64(static_cast<std::uint64_t>(fly.demand_waiters.size()));
      for (Cycle arrival : fly.demand_waiters) w.u64(arrival);
    }
    w.u64(ch.acct.demand_reads);
    w.u64(ch.acct.demand_writes);
    w.u64(ch.acct.demand_read_latency_sum);
    w.u64(ch.acct.resolved_demand_reads);
    w.u64(ch.acct.prefetch_issued);
    w.u64(ch.acct.late_prefetch_merges);
  }
}

void Simulator::load_state(snapshot::Reader& r) {
  PLANARIA_REQUIRE_MSG(kTimingMonotonicity, !finished_,
                       "load_state() after finish()");
  r.expect_tag(snapshot::tag4("SIMU"));
  const std::string name = r.str();
  if (name != name_) {
    throw snapshot::SnapshotError("snapshot was taken by prefetcher '" + name +
                                  "', this simulator runs '" + name_ + "'");
  }
  last_arrival_ = r.u64();
  if (r.b() != (ingest_fault_ != nullptr)) {
    throw snapshot::SnapshotError(
        "fault arming differs between snapshot and configuration");
  }
  if (ingest_fault_ != nullptr) ingest_fault_->load_state(r);
  for (Channel& ch : channels_) {
    ch.sc->load_state(r);
    ch.pf->load_state(r);
    ch.dram->load_state(r);
    if (r.b() != (ch.fault != nullptr)) {
      throw snapshot::SnapshotError(
          "fault arming differs between snapshot and configuration");
    }
    if (ch.fault != nullptr) ch.fault->load_state(r);
    ch.in_flight.clear();
    const std::uint64_t count = r.u64();
    if (count > r.remaining() / 8) {
      throw snapshot::SnapshotError("in-flight map count exceeds payload");
    }
    std::uint64_t prev = 0;
    for (std::uint64_t n = 0; n < count; ++n) {
      const std::uint64_t block = r.u64();
      if (n > 0 && block <= prev) {
        throw snapshot::SnapshotError("in-flight blocks out of order");
      }
      prev = block;
      InFlight fly;
      const std::uint8_t src = r.u8();
      if (src > static_cast<std::uint8_t>(cache::FillSource::kPrefetchOther)) {
        throw snapshot::SnapshotError("in-flight fill source out of range");
      }
      fly.source = static_cast<cache::FillSource>(src);
      fly.was_prefetch = r.b();
      const std::uint64_t waiters = r.u64();
      if (waiters > r.remaining() / 8) {
        throw snapshot::SnapshotError("in-flight waiter count exceeds payload");
      }
      fly.demand_waiters.reserve(static_cast<std::size_t>(waiters));
      for (std::uint64_t i = 0; i < waiters; ++i) {
        fly.demand_waiters.push_back(r.u64());
      }
      ch.in_flight.insert(block, std::move(fly));
    }
    ch.acct.demand_reads = r.u64();
    ch.acct.demand_writes = r.u64();
    ch.acct.demand_read_latency_sum = r.u64();
    ch.acct.resolved_demand_reads = r.u64();
    ch.acct.prefetch_issued = r.u64();
    ch.acct.late_prefetch_merges = r.u64();
  }
}

void SimResult::save_state(snapshot::Writer& w) const {
  w.tag(snapshot::tag4("RSLT"));
  w.str(prefetcher);
  w.u64(demand_reads);
  w.u64(demand_writes);
  w.f64(amat_cycles);
  w.f64(sc_hit_rate);
  w.f64(prefetch_accuracy);
  w.f64(prefetch_coverage);
  w.u64(prefetch_issued);
  w.u64(prefetch_dropped);
  w.u64(dram_reads);
  w.u64(dram_writes);
  w.u64(dram_traffic_blocks);
  w.f64(dram_power_mw);
  w.f64(sram_power_mw);
  w.f64(total_power_mw);
  w.f64(ipc);
  w.u64(elapsed);
  w.u64(hits_on_slp);
  w.u64(hits_on_tlp);
  w.u64(hits_on_other_pf);
  w.u64(pollution_misses);
  w.u64(slp_issues);
  w.u64(tlp_issues);
  w.u64(late_prefetch_merges);
  w.f64(data_bus_utilization);
  w.u64(storage_bits);
  w.u64(fault_injected_total);
  w.u64(fault_trace_corruptions);
  w.u64(fault_slp_flips);
  w.u64(fault_tlp_flips);
  w.u64(fault_prefetch_drops);
  w.u64(fault_prefetch_delays);
  w.u64(fault_dram_stalls);
}

void SimResult::load_state(snapshot::Reader& r) {
  r.expect_tag(snapshot::tag4("RSLT"));
  prefetcher = r.str();
  demand_reads = r.u64();
  demand_writes = r.u64();
  amat_cycles = r.f64();
  sc_hit_rate = r.f64();
  prefetch_accuracy = r.f64();
  prefetch_coverage = r.f64();
  prefetch_issued = r.u64();
  prefetch_dropped = r.u64();
  dram_reads = r.u64();
  dram_writes = r.u64();
  dram_traffic_blocks = r.u64();
  dram_power_mw = r.f64();
  sram_power_mw = r.f64();
  total_power_mw = r.f64();
  ipc = r.f64();
  elapsed = r.u64();
  hits_on_slp = r.u64();
  hits_on_tlp = r.u64();
  hits_on_other_pf = r.u64();
  pollution_misses = r.u64();
  slp_issues = r.u64();
  tlp_issues = r.u64();
  late_prefetch_merges = r.u64();
  data_bus_utilization = r.f64();
  storage_bits = r.u64();
  fault_injected_total = r.u64();
  fault_trace_corruptions = r.u64();
  fault_slp_flips = r.u64();
  fault_tlp_flips = r.u64();
  fault_prefetch_drops = r.u64();
  fault_prefetch_delays = r.u64();
  fault_dram_stalls = r.u64();
}

const cache::SystemCache& Simulator::cache_slice(int channel) const {
  return *channels_.at(static_cast<std::size_t>(channel)).sc;
}

const prefetch::Prefetcher& Simulator::prefetcher(int channel) const {
  return *channels_.at(static_cast<std::size_t>(channel)).pf;
}

double SimResult::traffic_overhead_vs(const SimResult& baseline) const {
  if (baseline.dram_traffic_blocks == 0) return 0.0;
  return static_cast<double>(dram_traffic_blocks) /
             static_cast<double>(baseline.dram_traffic_blocks) -
         1.0;
}

double SimResult::amat_reduction_vs(const SimResult& baseline) const {
  if (baseline.amat_cycles <= 0.0) return 0.0;
  return 1.0 - amat_cycles / baseline.amat_cycles;
}

double SimResult::power_increase_vs(const SimResult& baseline) const {
  if (baseline.total_power_mw <= 0.0) return 0.0;
  return total_power_mw / baseline.total_power_mw - 1.0;
}

double SimResult::ipc_gain_vs(const SimResult& baseline) const {
  if (baseline.ipc <= 0.0) return 0.0;
  return ipc / baseline.ipc - 1.0;
}

}  // namespace planaria::sim
