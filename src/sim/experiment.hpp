// Experiment runner: the sweep machinery behind every figure bench.
//
// Caches generated app traces (generation is a nontrivial fraction of a run)
// and executes (app x prefetcher) grids, returning SimResults keyed for the
// figure printers. Record counts default to a laptop-friendly length and can
// be scaled with the PLANARIA_RECORDS environment variable to approach the
// paper's 67-71M-record traces.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "trace/apps.hpp"

namespace planaria::sim {

/// Reads PLANARIA_RECORDS (decimal, e.g. "2000000") or returns `fallback`.
std::uint64_t records_from_env(std::uint64_t fallback);

class ExperimentRunner {
 public:
  explicit ExperimentRunner(SimConfig config = {},
                            std::uint64_t records = records_from_env(400000));

  /// Generated (and cached) bus trace for one paper app.
  const std::vector<trace::TraceRecord>& trace_for(const std::string& app);

  /// One cell of the grid.
  SimResult run(const std::string& app, PrefetcherKind kind);

  /// Runs `kinds` on every paper app. Results keyed [app][kind-name].
  std::map<std::string, std::map<std::string, SimResult>> sweep(
      const std::vector<PrefetcherKind>& kinds, bool verbose = false);

  const SimConfig& config() const { return config_; }
  std::uint64_t records() const { return records_; }

  /// Planaria table configuration used for the planaria/* kinds; mutable so
  /// ablation benches can sweep its parameters.
  core::PlanariaConfig& planaria_config() { return planaria_; }
  prefetch::BopConfig& bop_config() { return bop_; }
  prefetch::SppConfig& spp_config() { return spp_; }

  void clear_trace_cache() { traces_.clear(); }

 private:
  SimConfig config_;
  std::uint64_t records_;
  core::PlanariaConfig planaria_;
  prefetch::BopConfig bop_;
  prefetch::SppConfig spp_;
  std::map<std::string, std::vector<trace::TraceRecord>> traces_;
};

/// Geometric-mean helper for "average over apps" rows (the paper's averages
/// of ratios are reported as arithmetic means of per-app percentages; both
/// are provided).
double mean(const std::vector<double>& xs);
double geomean_ratio(const std::vector<double>& ratios);

}  // namespace planaria::sim
