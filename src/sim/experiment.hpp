// Experiment runner: the sweep machinery behind every figure bench.
//
// Caches generated app traces (generation is a nontrivial fraction of a run)
// and executes (app x prefetcher) grids, returning SimResults keyed for the
// figure printers. Record counts default to a laptop-friendly length and can
// be scaled with the PLANARIA_RECORDS environment variable to approach the
// paper's 67-71M-record traces.
//
// The grid is embarrassingly parallel (no state crosses cells, and inside a
// cell no state crosses channels), so the runner owns an optional
// common::ThreadPool sized by PLANARIA_THREADS: sweep() fans the cells out
// over the pool, each cell additionally shards its simulation by channel on
// the same pool, and the trace cache hands concurrent cells one shared
// generation per app through std::call_once. Results are bit-identical to the
// serial path at every thread count (tests/test_parallel.cpp holds this).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/checkpoint.hpp"
#include "sim/simulator.hpp"
#include "trace/apps.hpp"

namespace planaria::sim {

/// Reads PLANARIA_RECORDS (decimal, e.g. "2000000") or returns `fallback`.
std::uint64_t records_from_env(std::uint64_t fallback);

/// One sweep cell that failed after its bounded retry. The sweep result map
/// still contains the cell's key with a default-constructed SimResult, so
/// figure printers keep their shape; consumers that care check the report.
struct FailureReport {
  std::string app;
  std::string kind;
  int attempts = 0;   ///< how many times the cell was tried (1 + retries)
  int backoffs = 0;   ///< retries that were scheduled (attempts - 1)
  /// Total scheduler rounds the cell spent parked between attempts —
  /// deterministic sim-tick delays (seeded exponential backoff with jitter),
  /// never wall clock.
  std::uint64_t backoff_rounds = 0;
  std::string what;   ///< message of the last attempt's exception
};

// lint: suppress(snapshot-missing) sweep progress persists per-cell as .result files, not via the codec
class ExperimentRunner {
 public:
  explicit ExperimentRunner(
      SimConfig config = {},
      std::uint64_t records = records_from_env(400000),
      std::size_t threads = common::ThreadPool::threads_from_env(1));

  /// Generated (and cached) bus trace for one paper app. Thread-safe:
  /// concurrent sweep cells block on one std::call_once generation instead of
  /// racing to generate their own copies.
  const std::vector<trace::TraceRecord>& trace_for(const std::string& app);

  /// Columnar (SoA) view of the same cached trace, built once per app
  /// alongside the record vector. Cells consume this form: the simulator's
  /// admission loop then streams three flat columns instead of striding
  /// through 24-byte structs.
  const trace::TraceBatch& batch_for(const std::string& app);

  /// One cell of the grid (channel-sharded across the pool when one exists).
  SimResult run(const std::string& app, PrefetcherKind kind);

  /// Runs `kinds` on every paper app, fanning the (app x kind) cells over the
  /// thread pool when `threads > 1`. Results keyed [app][kind-name] and
  /// bit-identical to the serial sweep at any thread count.
  ///
  /// Failure isolation is opt-in: with `failures` null (the default), the
  /// first cell exception propagates exactly as before. With a sink supplied,
  /// each cell runs isolated — a throwing cell gets one bounded retry, and if
  /// that also throws, the cell's slot stays default-constructed and one
  /// FailureReport is appended (deterministic cell order) while every other
  /// cell runs to completion. A 44-cell overnight sweep no longer forfeits 43
  /// results to one poisoned cell.
  std::map<std::string, std::map<std::string, SimResult>> sweep(
      const std::vector<PrefetcherKind>& kinds, bool verbose = false,
      std::vector<FailureReport>* failures = nullptr);

  const SimConfig& config() const { return config_; }
  std::uint64_t records() const { return records_; }
  std::size_t threads() const { return pool_ ? pool_->size() : 1; }
  common::ThreadPool* pool() { return pool_.get(); }

  /// Planaria table configuration used for the planaria/* kinds; mutable so
  /// ablation benches can sweep its parameters.
  core::PlanariaConfig& planaria_config() { return planaria_; }
  prefetch::BopConfig& bop_config() { return bop_; }
  prefetch::SppConfig& spp_config() { return spp_; }

  void clear_trace_cache();

  /// Sweep-level checkpointing (DESIGN.md §11). With a directory set — by
  /// default from PLANARIA_CHECKPOINT_DIR — every completed (app x kind) cell
  /// persists its SimResult atomically; a restarted sweep reloads those cells
  /// verbatim instead of re-simulating them, and a corrupt or mismatched cell
  /// file is simply rerun. Cells additionally checkpoint mid-run (each under
  /// its own label, so concurrent cells never collide) when
  /// PLANARIA_CHECKPOINT_EVERY is also set. Empty disables everything.
  void set_checkpoint_dir(std::string dir) { checkpoint_dir_ = std::move(dir); }
  const std::string& checkpoint_dir() const { return checkpoint_dir_; }

 private:
  /// Map node holding one lazily generated trace; std::map guarantees the
  /// node (and its once_flag) stays put while cells share it.
  struct TraceEntry {
    std::once_flag once;
    std::vector<trace::TraceRecord> records;
    trace::TraceBatch batch;  ///< SoA mirror of `records`, built in the once
  };

  TraceEntry& entry_for(const std::string& app);

  SimResult run_cell(const std::string& app, PrefetcherKind kind,
                     const PrefetcherFactory& factory);

  std::string cell_path(const std::string& app, const char* kind) const;
  bool try_load_cell(const std::string& app, const char* kind,
                     SimResult& out) const;
  void store_cell(const std::string& app, const char* kind,
                  const SimResult& result) const;

  SimConfig config_;
  std::uint64_t records_;
  core::PlanariaConfig planaria_;
  prefetch::BopConfig bop_;
  prefetch::SppConfig spp_;
  std::unique_ptr<common::ThreadPool> pool_;  ///< null when threads == 1
  std::mutex traces_mutex_;                   ///< guards map shape only
  std::map<std::string, TraceEntry> traces_;
  std::string checkpoint_dir_;        ///< empty = no sweep checkpointing
  std::uint64_t checkpoint_every_ = 0;  ///< mid-cell interval; 0 = cell-only
};

/// Geometric-mean helper for "average over apps" rows (the paper's averages
/// of ratios are reported as arithmetic means of per-app percentages; both
/// are provided).
double mean(const std::vector<double>& xs);
double geomean_ratio(const std::vector<double>& ratios);

}  // namespace planaria::sim
