// Crash-safe checkpoint/resume driver for the simulator (DESIGN.md §11).
//
// The snapshot library (src/snapshot/) provides the byte format and the
// atomic file envelope; this layer decides *when* to checkpoint and *what* to
// trust at restart. A checkpointed run:
//
//   * feeds the trace in `every`-record chunks through the range form of
//     Simulator::run_sharded (chunked execution is bit-identical to a single
//     call — see the contract on that overload);
//   * after each full chunk rotates <label>.snap to <label>.snap.prev and
//     atomically writes a fresh <label>.snap, so at every instant the
//     directory holds at least one complete snapshot (last-good retention);
//   * at startup tries <label>.snap, then <label>.snap.prev, then a cold
//     start. A snapshot that is truncated, CRC-corrupt, version-mismatched,
//     or taken against a different trace/prefetcher is *rejected* — the run
//     degrades to the next candidate with a note in the RecoveryReport, never
//     crashes and never silently produces wrong results.
//
// The bit-identity guarantee: a run killed at any record index and resumed
// from its last-good snapshot produces a SimResult that compares equal
// (SimResult::operator==, doubles included) to the uninterrupted run, at any
// thread count, with or without an armed FaultPlan. planaria-audit --stage
// crash enforces exactly this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace planaria::sim {

/// Where and how often to checkpoint. Default-constructed = disabled.
struct CheckpointConfig {
  std::string dir;           ///< snapshot directory; empty disables
  std::uint64_t every = 0;   ///< checkpoint after each N records; 0 disables
  std::string label = "run"; ///< file basename, one per logical run

  bool enabled() const { return !dir.empty() && every > 0; }
  std::string current_path() const { return dir + "/" + label + ".snap"; }
  std::string prev_path() const { return current_path() + ".prev"; }

  /// Reads PLANARIA_CHECKPOINT_DIR and PLANARIA_CHECKPOINT_EVERY; either
  /// unset (or an unparsable interval) leaves checkpointing disabled.
  static CheckpointConfig from_env();
};

/// How a checkpointed run actually started — surfaced to callers and audits
/// so degraded recovery is observable, not silent.
struct RecoveryReport {
  enum class Outcome {
    kColdStart,  ///< no usable snapshot; ran from record zero
    kResumed,    ///< restored from the current snapshot
    kFellBack,   ///< current snapshot rejected; restored from .prev
  };
  Outcome outcome = Outcome::kColdStart;
  std::string snapshot_path;        ///< snapshot restored from (if any)
  std::uint64_t resumed_cursor = 0; ///< records already applied at restore
  /// Mid-run checkpoint writes (rotation included) that failed; the run
  /// continued degraded — a failed checkpoint costs resumability, never the
  /// result. Each failure also leaves a line in `notes`.
  std::uint64_t checkpoint_failures = 0;
  std::vector<std::string> notes;   ///< one line per rejected candidate
};

const char* recovery_outcome_name(RecoveryReport::Outcome outcome);

/// Result of a scrub pass over snapshot current/.prev pairs. Exact-count
/// contract: scanned == intact + quarantined, and every quarantined or
/// missing slot whose partner survived is rewritten (repaired) from that
/// surviving copy — corrupt envelopes are *moved aside* to
/// "<path>.quarantine" for post-mortem, never deleted.
struct ScrubReport {
  std::uint64_t scanned = 0;      ///< envelope files examined
  std::uint64_t intact = 0;       ///< envelopes that decoded clean
  std::uint64_t quarantined = 0;  ///< corrupt envelopes moved to .quarantine
  std::uint64_t repaired = 0;     ///< slots rewritten from the good partner
  std::uint64_t missing = 0;      ///< pair slots with no file at all
  std::vector<std::string> notes; ///< one line per quarantine/repair action
};

/// Scrubs one current/.prev pair: CRC-verifies both envelopes, quarantines
/// any corrupt one to "<path>.quarantine", then repairs a quarantined slot
/// from the surviving good copy so the pair is whole again. A slot that was
/// missing from the start is counted missing but not fabricated (a run that
/// has only ever written `current` legitimately has no .prev). Tallies into
/// `report` so callers can sweep many pairs into one report.
void scrub_snapshot_pair(const std::string& current, const std::string& prev,
                         ScrubReport& report);

/// Convenience: scrubs the pair named by `ckpt` (current_path/prev_path).
ScrubReport scrub_checkpoints(const CheckpointConfig& ckpt);

/// Identity of a trace for resume validation: CRC32 over a deterministic
/// sample of records (every (n/4096)-th, so the cost is flat) combined with
/// the record count. A snapshot taken against a different trace fails this
/// check at load time instead of producing subtly wrong results.
std::uint64_t trace_fingerprint(const std::vector<trace::TraceRecord>& records);

/// Columnar form. Produces the *identical* value to the vector overload on
/// the same logical trace — resume validation must not care which container
/// the caller happened to hold.
std::uint64_t trace_fingerprint(const trace::TraceBatch& batch);

/// Serializes `sim` plus the resume envelope (cursor, trace fingerprint) and
/// installs it as the current snapshot: the previous current is rotated to
/// .prev first, then the new bytes land via write-temp-and-rename. A crash
/// anywhere in between leaves at least one complete snapshot behind.
void write_checkpoint(const Simulator& sim, const CheckpointConfig& ckpt,
                      std::uint64_t cursor, std::uint64_t fingerprint);

/// Restores `sim` (freshly constructed from the same config/factory/name)
/// from the snapshot at `path` and returns the record cursor to resume at.
/// Throws snapshot::SnapshotError on any validation failure — envelope, tag
/// structure, trace fingerprint or prefetcher mismatch; `sim` is then
/// partially updated and must be discarded.
std::uint64_t load_checkpoint(Simulator& sim, const std::string& path,
                              std::uint64_t expected_fingerprint);

/// Crash-safe front end to Simulator::run. Resumes from the newest intact
/// snapshot when `ckpt` is enabled (current, then .prev, else cold start —
/// see RecoveryReport), then feeds the remaining records chunk by chunk with
/// a checkpoint after every full chunk. Disabled `ckpt` degenerates to one
/// chunk and no files. `report`, when non-null, receives the recovery trail.
SimResult run_checkpointed(const SimConfig& config, PrefetcherFactory factory,
                           std::string prefetcher_name,
                           const std::vector<trace::TraceRecord>& records,
                           const CheckpointConfig& ckpt,
                           common::ThreadPool* pool = nullptr,
                           RecoveryReport* report = nullptr);

/// Columnar form: feeds chunks through the TraceBatch span overload of
/// Simulator::run_sharded. Bit-identical to the vector form on the same
/// logical trace (same fingerprint, same chunking, same admission order), so
/// a snapshot written by one is resumable by the other.
SimResult run_checkpointed(const SimConfig& config, PrefetcherFactory factory,
                           std::string prefetcher_name,
                           const trace::TraceBatch& batch,
                           const CheckpointConfig& ckpt,
                           common::ThreadPool* pool = nullptr,
                           RecoveryReport* report = nullptr);

/// Explicit resume entry point: restores from exactly `path` (throwing
/// snapshot::SnapshotError if it is missing or invalid — no fallback) and
/// completes the run. Bit-identical to the uninterrupted run.
SimResult resume(const SimConfig& config, PrefetcherFactory factory,
                 std::string prefetcher_name,
                 const std::vector<trace::TraceRecord>& records,
                 const std::string& path, common::ThreadPool* pool = nullptr);

}  // namespace planaria::sim
