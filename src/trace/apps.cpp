#include "trace/apps.hpp"

#include <stdexcept>

namespace planaria::trace {

namespace {

/// Base profile with the defaults most apps share; per-app builders tweak it.
///
/// Calibration notes (see DESIGN.md §2): the component weights and pool sizes
/// are set so that (a) the footprint working set exceeds the 4MB SC while
/// pages average ~5-7 visits, so snapshot *data* is evicted between visits
/// but the PT *metadata* persists — the paper's core mechanism; (b)
/// stream+irregular records stay a minority of misses (they are uncoverable
/// by snapshot prefetching); (c) Fort's pool is so large that self-learning
/// starves and transfer learning carries the win (Fig. 9); (d) Fort/NBA2/PM
/// run at high intensity so speculative over-fetching congests the channel
/// (Fig. 8's BOP anomaly).
AppProfile base_profile(std::string name, std::string description,
                        std::uint64_t seed) {
  AppProfile app;
  app.name = std::move(name);
  app.description = std::move(description);
  app.seed = seed;
  return app;
}

std::vector<AppProfile> build_apps() {
  std::vector<AppProfile> apps;

  {
    // First-person shooter: tight working set of level geometry/textures,
    // strongly SLP-friendly.
    AppProfile a = base_profile("CFM", "Cross Fire Mobile (FPS)", 101);
    a.weight_footprint = 0.76;
    a.weight_neighbor = 0.07;
    a.weight_stream = 0.09;
    a.weight_irregular = 0.08;
    a.neighbor.clusters = 30;
    a.footprint.hot_pages = 3968;
    a.footprint.zipf_s = 0.48;
    a.footprint.mutate_p = 0.05;
    a.footprint.order_entropy = 0.35;
    a.mean_gap = 26;
    a.burstiness = 0.2;
    apps.push_back(a);
  }
  {
    // MOBA: moderate footprint reuse plus some map-tile clustering.
    AppProfile a = base_profile("HoK", "Honor of Kings (MOBA)", 102);
    a.weight_footprint = 0.73;
    a.weight_neighbor = 0.14;
    a.weight_stream = 0.06;
    a.weight_irregular = 0.07;
    a.footprint.hot_pages = 4096;
    a.footprint.zipf_s = 0.45;
    a.footprint.mutate_p = 0.08;
    a.footprint.order_entropy = 0.35;
    a.neighbor.clusters = 70;
    a.mean_gap = 24;
    a.burstiness = 0.2;
    apps.push_back(a);
  }
  {
    AppProfile a = base_profile("Id-V", "Identity V (battle arena)", 103);
    a.weight_footprint = 0.63;
    a.weight_neighbor = 0.18;
    a.weight_stream = 0.08;
    a.weight_irregular = 0.11;
    a.footprint.hot_pages = 3200;
    a.footprint.zipf_s = 0.5;
    a.footprint.mutate_p = 0.10;
    a.footprint.order_entropy = 0.4;
    a.neighbor.clusters = 80;
    a.neighbor.new_page_rate = 0.5;
    a.mean_gap = 25;
    a.burstiness = 0.25;
    apps.push_back(a);
  }
  {
    // 3D racing: track data streams by, car/HUD assets are stable footprints.
    AppProfile a = base_profile("QSM", "QQ Speed Mobile (3D racing)", 104);
    a.weight_footprint = 0.74;
    a.weight_neighbor = 0.06;
    a.weight_stream = 0.12;
    a.weight_irregular = 0.08;
    a.neighbor.clusters = 30;
    a.footprint.hot_pages = 3840;
    a.footprint.zipf_s = 0.52;
    a.footprint.mutate_p = 0.06;
    a.footprint.order_entropy = 0.3;
    a.mean_gap = 24;
    a.burstiness = 0.2;
    apps.push_back(a);
  }
  {
    // Short video: large sequential decode/display buffers.
    AppProfile a = base_profile("TikT", "TikTok (short video)", 105);
    a.weight_footprint = 0.57;
    a.weight_neighbor = 0.12;
    a.weight_stream = 0.22;
    a.weight_irregular = 0.09;
    a.neighbor.clusters = 60;
    a.footprint.hot_pages = 2816;
    a.footprint.zipf_s = 0.5;
    a.footprint.mutate_p = 0.09;
    a.footprint.order_entropy = 0.28;
    a.stream.run_min = 128;
    a.stream.run_max = 768;
    a.mean_gap = 22;
    a.burstiness = 0.3;
    apps.push_back(a);
  }
  {
    // Battle royale with a huge open world: pages are rarely revisited, so
    // self-learning starves; dense clusters of similar terrain pages make
    // this the TLP showcase (Fig. 9). High intensity + noise also makes BOP's
    // over-fetching expensive (Fig. 8 anomaly).
    AppProfile a = base_profile("Fort", "Fortnite (battle royale)", 106);
    a.weight_footprint = 0.2;
    a.weight_neighbor = 0.48;
    a.weight_stream = 0.08;
    a.weight_irregular = 0.24;
    a.footprint.hot_pages = 16384;  // huge set => little SLP reuse
    a.footprint.zipf_s = 0.3;
    a.footprint.mutate_p = 0.12;
    a.footprint.order_entropy = 0.65;
    a.neighbor.clusters = 320;
    a.neighbor.cluster_span = 56;
    a.neighbor.new_page_rate = 0.85;
    a.neighbor.cluster_stay = 20;
    a.mean_gap = 7;
    a.burstiness = 0.78;
    apps.push_back(a);
  }
  {
    AppProfile a = base_profile("HI3", "Honkai Impact 3 (3D action)", 107);
    a.weight_footprint = 0.76;
    a.weight_neighbor = 0.06;
    a.weight_stream = 0.1;
    a.weight_irregular = 0.08;
    a.neighbor.clusters = 30;
    a.footprint.hot_pages = 3968;
    a.footprint.zipf_s = 0.5;
    a.footprint.mutate_p = 0.05;
    a.footprint.order_entropy = 0.32;
    a.mean_gap = 27;
    a.burstiness = 0.2;
    apps.push_back(a);
  }
  {
    AppProfile a = base_profile("KO", "Knives Out (battle royale)", 108);
    a.weight_footprint = 0.7;
    a.weight_neighbor = 0.12;
    a.weight_stream = 0.08;
    a.weight_irregular = 0.1;
    a.neighbor.clusters = 40;
    a.footprint.hot_pages = 3648;
    a.footprint.zipf_s = 0.5;
    a.footprint.mutate_p = 0.07;
    a.footprint.order_entropy = 0.35;
    a.mean_gap = 24;
    a.burstiness = 0.2;
    apps.push_back(a);
  }
  {
    // Sports sim: SLP-friendly footprints but bursty, high-bandwidth frames
    // where extra prefetch traffic backs up the channel (BOP hurts here).
    AppProfile a = base_profile("NBA2", "NBA 2K19 (basketball)", 109);
    a.weight_footprint = 0.67;
    a.weight_neighbor = 0.1;
    a.weight_stream = 0.07;
    a.weight_irregular = 0.16;
    a.neighbor.clusters = 40;
    a.footprint.hot_pages = 3392;
    a.footprint.zipf_s = 0.48;
    a.footprint.mutate_p = 0.06;
    a.footprint.order_entropy = 0.6;
    a.mean_gap = 8;
    a.burstiness = 0.76;
    apps.push_back(a);
  }
  {
    AppProfile a = base_profile("PM", "PUBG Mobile (battle royale)", 110);
    a.weight_footprint = 0.57;
    a.weight_neighbor = 0.13;
    a.weight_stream = 0.08;
    a.weight_irregular = 0.22;
    a.neighbor.clusters = 50;
    a.footprint.hot_pages = 2944;
    a.footprint.zipf_s = 0.5;
    a.footprint.mutate_p = 0.09;
    a.footprint.order_entropy = 0.62;
    a.mean_gap = 8;
    a.burstiness = 0.72;
    apps.push_back(a);
  }
  return apps;
}

}  // namespace

const std::vector<AppProfile>& paper_apps() {
  static const std::vector<AppProfile> apps = build_apps();
  return apps;
}

const AppProfile& app_by_name(const std::string& abbr) {
  for (const auto& a : paper_apps()) {
    if (a.name == abbr) return a;
  }
  throw std::out_of_range("unknown app: " + abbr);
}

std::vector<std::string> app_names() {
  std::vector<std::string> names;
  names.reserve(paper_apps().size());
  for (const auto& a : paper_apps()) names.push_back(a.name);
  return names;
}

}  // namespace planaria::trace
