// Memory-bus trace records.
//
// Mirrors the paper's trace format from Section 5: "Each trace entry includes
// the physical access address, the access type (i.e., read or write), the
// request device ID (i.e., CPU, GPU, DSP, etc.) and the access arrival time."
// Arrival time is in memory-controller clock cycles.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace planaria::trace {

struct TraceRecord {
  Address address = 0;     ///< physical byte address (block-aligned by IO layer)
  Cycle arrival = 0;       ///< arrival time at the system cache, in cycles
  AccessType type = AccessType::kRead;
  DeviceId device = DeviceId::kCpuBig;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

}  // namespace planaria::trace
