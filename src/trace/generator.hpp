// Synthetic mobile-SoC memory trace generators.
//
// The paper evaluates on proprietary traces captured from a physical phone's
// memory bus. Those traces are not publicly available, so this module
// synthesizes streams with the *statistical structure* the paper measures and
// exploits:
//
//   * FootprintComponent  — Observation 1: a set of hot pages, each with a
//     stable footprint snapshot (a fixed subset of its 64 blocks) that is
//     revisited with long reuse distance and non-deterministic intra-snapshot
//     order. Slow per-visit mutation models program-phase drift and is the
//     knob behind the Fig. 4 overlap rate (> 80%).
//   * NeighborComponent   — Observation 2: clusters of address-adjacent pages
//     sharing a common footprint up to a few perturbed bits; new pages of a
//     cluster keep appearing over time, giving a transfer-learning prefetcher
//     its opportunity. The cluster span and perturbation bound are the knobs
//     behind Fig. 5's learnable-neighbor fractions.
//   * StreamComponent     — linear block runs crossing page boundaries (GPU
//     framebuffer/ISP style), the pattern classic offset/delta prefetchers
//     (BOP, SPP) are built for.
//   * IrregularComponent  — uniformly random single-block accesses (pointer
//     chasing already filtered by the CPU caches), pure noise that mistrains
//     aggressive prefetchers into wasted traffic.
//
// Each component produces an arrival-time-sorted stream of its own; an app
// profile mixes them by weight and merges them into one bus trace, which
// naturally interleaves agents the way a shared memory controller sees them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "trace/record.hpp"

namespace planaria::trace {

/// Shared pacing parameters: a component receives a record budget and a time
/// horizon and paces itself with bursts + idle gaps to fill the horizon.
struct Pacing {
  std::uint64_t records = 0;   ///< how many records this component emits
  Cycle horizon = 0;           ///< total trace duration in cycles
  Cycle intra_gap = 4;         ///< cycles between records inside a burst
  double gap_jitter = 0.5;     ///< +/- fractional jitter on idle gaps
  double burstiness = 0.0;     ///< fraction of gaps collapsed to ~0 (frame-
                               ///< style bursts); the rest stretch to keep
                               ///< the same long-run rate
};

struct FootprintParams {
  int hot_pages = 512;            ///< distinct pages with stable snapshots
  PageNumber base_page = 0x10000; ///< region start
  PageNumber page_span = 1 << 18; ///< pages are scattered over this span
  int footprint_min = 16;         ///< min blocks in a snapshot (of 64)
  int footprint_max = 40;         ///< max blocks in a snapshot
  double zipf_s = 0.7;            ///< page popularity skew
  double mutate_p = 0.08;         ///< per-visit chance one footprint bit drifts
  double twin_fraction = 0.65;    ///< fraction of pages created as near-copies
                                  ///< of an earlier page (contiguous allocation
                                  ///< of related structures; feeds Fig. 5)
  int twin_max_distance = 64;     ///< twin page-number distance bound
  int twin_flip_bits = 2;         ///< footprint deviation of a twin
  double order_entropy = 0.35;    ///< fraction of emission order randomly
                                  ///< transposed: 0 = run-ordered (delta-
                                  ///< friendly), 1 = fully shuffled
  double write_fraction = 0.2;
  DeviceId device = DeviceId::kCpuBig;
};

struct NeighborParams {
  int clusters = 24;              ///< independent page clusters
  PageNumber base_page = 0x80000;
  PageNumber cluster_stride = 1 << 12;  ///< distance between cluster origins
  int cluster_span = 48;          ///< pages per cluster (<= TLP distance 64)
  int base_footprint = 28;        ///< blocks in the cluster's shared pattern
  int perturb_bits = 2;           ///< per-page deviation from the base pattern
                                  ///< (pairwise Hamming <= 4: learnable)
  double new_page_rate = 0.45;    ///< chance a visit lands on an unseen page
  int cluster_stay = 12;          ///< consecutive visits within one cluster
  double write_fraction = 0.15;
  DeviceId device = DeviceId::kGpu;
};

struct StreamParams {
  int streams = 8;                ///< concurrent linear streams
  PageNumber base_page = 0x200000;
  PageNumber stream_stride = 1 << 10;  ///< distance between stream origins
  int run_min = 64;               ///< blocks per run
  int run_max = 512;
  int block_stride = 1;           ///< +1 = pure sequential
  double write_fraction = 0.25;
  DeviceId device = DeviceId::kIsp;
};

struct IrregularParams {
  PageNumber base_page = 0x400000;
  PageNumber page_span = 1 << 14;  ///< large region, sparse reuse
  int blocks_min = 4;   ///< blocks touched per page visit (scattered over the
  int blocks_max = 6;   ///< whole page, so ~1 per channel: below the FT
                        ///< threshold, invisible to snapshot learning)
  double write_fraction = 0.1;
  DeviceId device = DeviceId::kDsp;
};

std::vector<TraceRecord> generate_footprint(const FootprintParams& params,
                                            const Pacing& pacing, Rng& rng);
std::vector<TraceRecord> generate_neighbor(const NeighborParams& params,
                                           const Pacing& pacing, Rng& rng);
std::vector<TraceRecord> generate_stream(const StreamParams& params,
                                         const Pacing& pacing, Rng& rng);
std::vector<TraceRecord> generate_irregular(const IrregularParams& params,
                                            const Pacing& pacing, Rng& rng);

/// A full application profile: component weights plus the per-component
/// parameters and overall intensity. See apps.hpp for the ten calibrated
/// instances standing in for the paper's Table 2 workloads.
struct AppProfile {
  std::string name;           ///< paper abbreviation, e.g. "HoK"
  std::string description;
  double weight_footprint = 0.55;
  double weight_neighbor = 0.15;
  double weight_stream = 0.15;
  double weight_irregular = 0.15;
  Cycle mean_gap = 24;        ///< average cycles between bus records
  double burstiness = 0.0;    ///< arrival burstiness (frame rendering spikes)
  FootprintParams footprint;
  NeighborParams neighbor;
  StreamParams stream;
  IrregularParams irregular;
  std::uint64_t seed = 1;
};

/// Generates a complete merged bus trace of `records` entries for `app`.
/// Throws std::invalid_argument on non-positive weights/records. Pure: all
/// RNG state is derived locally from app.seed, so concurrent calls are safe
/// and output depends only on (app, records).
std::vector<TraceRecord> generate_app_trace(const AppProfile& app,
                                            std::uint64_t records);

/// Generates one trace per profile, in profile order, fanning the
/// per-profile generation out over `pool` when one is supplied (each profile
/// seeds its own RNGs, so the result is identical at any thread count).
std::vector<std::vector<TraceRecord>> generate_app_traces(
    const std::vector<AppProfile>& apps, std::uint64_t records,
    common::ThreadPool* pool = nullptr);

}  // namespace planaria::trace
