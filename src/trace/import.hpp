// Importers for public trace formats.
//
// The paper's phone captures are proprietary; the natural substitutes are the
// public traces of the simulator ecosystems this project fits into:
//
//   * DRAMSim2 `.trc` text traces — the simulator the paper modified. Each
//     line is `<hex address> <type> <cycle>`, where type is one of
//     P_MEM_RD / P_MEM_WR (memory-side, exactly our vantage point) or
//     P_FETCH / BOFF.
//   * ChampSim LLC access traces in the simple CSV form
//     `address,is_write,cycle` that champsim tooling can emit. (ChampSim's
//     binary instruction traces carry PCs and pre-LLC accesses; exporting
//     LLC misses to CSV is the standard way to retarget them.)
//
// Imported records carry DeviceId::kCpuBig — public traces are single-agent,
// which is itself part of why the paper captured its own.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/io.hpp"
#include "trace/record.hpp"

namespace planaria::trace {

/// Parses a DRAMSim2 `.trc` stream. Under kThrow (default), unknown
/// transaction types and malformed lines raise std::runtime_error with the
/// line number; under kRecover they are skipped and counted into `report`,
/// up to kDefaultErrorBudget (see trace/io.hpp).
std::vector<TraceRecord> read_dramsim2(
    std::istream& is, RecoveryPolicy policy = RecoveryPolicy::kThrow,
    TraceReadReport* report = nullptr);
std::vector<TraceRecord> read_dramsim2_file(
    const std::string& path, RecoveryPolicy policy = RecoveryPolicy::kThrow,
    TraceReadReport* report = nullptr);

/// Writes the DRAMSim2 `.trc` format, allowing generated mobile workloads to
/// be replayed on a stock DRAMSim2 build for cross-validation.
void write_dramsim2(std::ostream& os, const std::vector<TraceRecord>& records);

/// Parses `address,is_write,cycle` CSV (ChampSim LLC export convention).
/// A header line is optional and detected automatically. Same per-line
/// skip-and-count semantics under kRecover as read_dramsim2.
std::vector<TraceRecord> read_champsim_csv(
    std::istream& is, RecoveryPolicy policy = RecoveryPolicy::kThrow,
    TraceReadReport* report = nullptr);

}  // namespace planaria::trace
