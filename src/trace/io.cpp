#include "trace/io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace planaria::trace {

namespace {

struct BinaryHeader {
  std::uint32_t magic;
  std::uint16_t version;
  std::uint16_t flags;
  std::uint64_t count;
};
static_assert(sizeof(BinaryHeader) == 16);

struct BinaryRecord {
  std::uint64_t address;
  std::uint64_t arrival;
  std::uint8_t type;
  std::uint8_t device;
  std::uint8_t pad[6];
};
static_assert(sizeof(BinaryRecord) == 24);

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("trace IO: " + what);
}

}  // namespace

void write_binary(std::ostream& os, const std::vector<TraceRecord>& records) {
  BinaryHeader h{kTraceMagic, kTraceVersion, 0, records.size()};
  os.write(reinterpret_cast<const char*>(&h), sizeof(h));
  for (const auto& r : records) {
    BinaryRecord b{};
    b.address = r.address;
    b.arrival = r.arrival;
    b.type = static_cast<std::uint8_t>(r.type);
    b.device = static_cast<std::uint8_t>(r.device);
    os.write(reinterpret_cast<const char*>(&b), sizeof(b));
  }
  if (!os) fail("write failed");
}

void write_binary_file(const std::string& path,
                       const std::vector<TraceRecord>& records) {
  std::ofstream os(path, std::ios::binary);
  if (!os) fail("cannot open for write: " + path);
  write_binary(os, records);
}

std::vector<TraceRecord> read_binary(std::istream& is) {
  BinaryHeader h{};
  is.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!is || is.gcount() != sizeof(h)) fail("truncated header");
  if (h.magic != kTraceMagic) fail("bad magic (not a planaria trace)");
  if (h.version != kTraceVersion) {
    fail("unsupported trace version " + std::to_string(h.version));
  }
  std::vector<TraceRecord> out;
  out.reserve(h.count);
  for (std::uint64_t i = 0; i < h.count; ++i) {
    BinaryRecord b{};
    is.read(reinterpret_cast<char*>(&b), sizeof(b));
    if (!is || is.gcount() != sizeof(b)) fail("truncated payload");
    if (b.type > 1) fail("corrupt record: bad access type");
    if (b.device >= static_cast<std::uint8_t>(DeviceId::kCount)) {
      fail("corrupt record: bad device id");
    }
    out.push_back(TraceRecord{addr::block_align(b.address), b.arrival,
                              static_cast<AccessType>(b.type),
                              static_cast<DeviceId>(b.device)});
  }
  return out;
}

std::vector<TraceRecord> read_binary_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("cannot open for read: " + path);
  return read_binary(is);
}

void write_csv(std::ostream& os, const std::vector<TraceRecord>& records) {
  os << "address,arrival,type,device\n";
  for (const auto& r : records) {
    os << "0x" << std::hex << r.address << std::dec << ',' << r.arrival << ','
       << (r.type == AccessType::kRead ? 'R' : 'W') << ','
       << device_name(r.device) << '\n';
  }
  if (!os) fail("csv write failed");
}

std::vector<TraceRecord> read_csv(std::istream& is) {
  std::vector<TraceRecord> out;
  std::string line;
  if (!std::getline(is, line)) fail("empty csv");
  // Header row is required but its exact spelling is not enforced.
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string addr_s, arrival_s, type_s, device_s;
    if (!std::getline(ls, addr_s, ',') || !std::getline(ls, arrival_s, ',') ||
        !std::getline(ls, type_s, ',') || !std::getline(ls, device_s)) {
      fail("csv parse error at line " + std::to_string(line_no));
    }
    TraceRecord r;
    r.address = addr::block_align(std::stoull(addr_s, nullptr, 0));
    r.arrival = std::stoull(arrival_s);
    if (type_s == "R") {
      r.type = AccessType::kRead;
    } else if (type_s == "W") {
      r.type = AccessType::kWrite;
    } else {
      fail("csv bad access type at line " + std::to_string(line_no));
    }
    r.device = DeviceId::kCpuBig;
    bool matched = false;
    for (int d = 0; d < static_cast<int>(DeviceId::kCount); ++d) {
      if (device_s == device_name(static_cast<DeviceId>(d))) {
        r.device = static_cast<DeviceId>(d);
        matched = true;
        break;
      }
    }
    if (!matched) fail("csv bad device at line " + std::to_string(line_no));
    out.push_back(r);
  }
  return out;
}

std::vector<TraceRecord> merge_sorted(
    const std::vector<std::vector<TraceRecord>>& streams) {
  // k-way merge by (arrival, stream index) keeps the merge stable.
  struct Head {
    Cycle arrival;
    std::size_t stream;
    std::size_t pos;
    bool operator>(const Head& o) const {
      return arrival != o.arrival ? arrival > o.arrival : stream > o.stream;
    }
  };
  std::priority_queue<Head, std::vector<Head>, std::greater<>> heap;
  std::size_t total = 0;
  for (std::size_t s = 0; s < streams.size(); ++s) {
    total += streams[s].size();
    if (!streams[s].empty()) heap.push(Head{streams[s][0].arrival, s, 0});
  }
  std::vector<TraceRecord> out;
  out.reserve(total);
  while (!heap.empty()) {
    const Head h = heap.top();
    heap.pop();
    out.push_back(streams[h.stream][h.pos]);
    const std::size_t next = h.pos + 1;
    if (next < streams[h.stream].size()) {
      heap.push(Head{streams[h.stream][next].arrival, h.stream, next});
    }
  }
  return out;
}

}  // namespace planaria::trace
