#include "trace/io.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define PLANARIA_TRACE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "check/contract.hpp"
#include "io/vfs.hpp"

namespace planaria::trace {

namespace {

struct BinaryHeader {
  std::uint32_t magic;
  std::uint16_t version;
  std::uint16_t flags;
  std::uint64_t count;
};
static_assert(sizeof(BinaryHeader) == 16);

struct BinaryRecord {
  std::uint64_t address;
  std::uint64_t arrival;
  std::uint8_t type;
  std::uint8_t device;
  std::uint8_t pad[6];
};
static_assert(sizeof(BinaryRecord) == 24);

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("trace IO: " + what);
}

/// One defect: throw under kThrow, otherwise tally it into `report` and check
/// the budget — a stream that keeps producing garbage past the budget is the
/// wrong format, and pressing on would only manufacture a bogus trace.
void defect(RecoveryPolicy policy, TraceReadReport& report,
            const std::string& what) {
  if (policy == RecoveryPolicy::kThrow) fail(what);
  report.note(what);
  if (report.errors > kDefaultErrorBudget) {
    fail("error budget exhausted (" + std::to_string(report.errors) +
         " defects; last: " + what + ")");
  }
}

/// Bytes left in `is` past the current position, or npos-style -1 for
/// non-seekable streams.
std::int64_t remaining_bytes(std::istream& is) {
  const std::istream::pos_type cur = is.tellg();
  if (cur == std::istream::pos_type(-1)) return -1;
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(cur);
  if (end == std::istream::pos_type(-1) || end < cur) return -1;
  return static_cast<std::int64_t>(end - cur);
}

}  // namespace

void TraceReadReport::note(std::string message) {
  ++errors;
  if (messages.size() < kMaxReportedErrors) {
    messages.push_back(std::move(message));
  }
}

void write_binary(std::ostream& os, const std::vector<TraceRecord>& records) {
  BinaryHeader h{kTraceMagic, kTraceVersion, 0, records.size()};
  os.write(reinterpret_cast<const char*>(&h), sizeof(h));
  for (const auto& r : records) {
    BinaryRecord b{};
    b.address = r.address;
    b.arrival = r.arrival;
    b.type = static_cast<std::uint8_t>(r.type);
    b.device = static_cast<std::uint8_t>(r.device);
    os.write(reinterpret_cast<const char*>(&b), sizeof(b));
  }
  if (!os) fail("write failed");
}

void write_binary_file(const std::string& path,
                       const std::vector<TraceRecord>& records) {
  // Serialize through the stream encoder, land the bytes through the io VFS
  // so the container gets the durable tmp/fsync/rename discipline and the
  // storage-fault drills cover this write site too.
  std::ostringstream os(std::ios::binary);
  write_binary(os, records);
  const std::string image = os.str();
  try {
    io::write_file_durable(path, {io::ByteSpan{image.data(), image.size()}});
  } catch (const io::IoError& e) {
    fail(e.what());
  }
}

std::vector<TraceRecord> read_binary(std::istream& is, RecoveryPolicy policy,
                                     TraceReadReport* report) {
  TraceReadReport local;
  TraceReadReport& rep = report != nullptr ? *report : local;

  BinaryHeader h{};
  is.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!is || is.gcount() != sizeof(h)) fail("truncated header");
  // A stream whose identity bytes are wrong is not a damaged trace, it is not
  // a trace: there is no salvageable prefix, so these throw in every policy.
  if (h.magic != kTraceMagic) fail("bad magic (not a planaria trace)");
  if (h.version != kTraceVersion) {
    fail("unsupported trace version " + std::to_string(h.version));
  }

  // The header's record count is untrusted input: bound it by the bytes the
  // stream actually holds BEFORE sizing any allocation from it. A 16-byte
  // file claiming 2^61 records previously drove a multi-GB reserve; now it is
  // a precise error (kThrow) or a salvage of what is really there (kRecover).
  std::uint64_t expect = h.count;
  const std::int64_t avail = remaining_bytes(is);
  if (avail >= 0) {
    const auto whole_records =
        static_cast<std::uint64_t>(avail) / sizeof(BinaryRecord);
    if (h.count > whole_records) {
      if (policy == RecoveryPolicy::kThrow) {
        fail("header claims " + std::to_string(h.count) +
             " records but the stream holds only " +
             std::to_string(whole_records) + " (" + std::to_string(avail) +
             " bytes)");
      }
      rep.note("truncated: header claims " + std::to_string(h.count) +
               " records, stream holds " + std::to_string(whole_records));
      rep.truncated = true;
      expect = whole_records;
    }
  }

  std::vector<TraceRecord> out;
  // For a non-seekable stream the count could not be validated; cap the
  // upfront reservation and let the vector grow against real data instead.
  constexpr std::uint64_t kBlindReserveCap = 1u << 20;
  out.reserve(avail >= 0 ? expect : std::min(expect, kBlindReserveCap));
  for (std::uint64_t i = 0; i < expect; ++i) {
    BinaryRecord b{};
    is.read(reinterpret_cast<char*>(&b), sizeof(b));
    if (!is || is.gcount() != sizeof(b)) {
      // Reachable when the byte count was unknowable (non-seekable stream) or
      // the stream shrank mid-read; the complete-record prefix stands.
      if (policy == RecoveryPolicy::kThrow) fail("truncated payload");
      rep.note("truncated payload at record " + std::to_string(i));
      rep.truncated = true;
      break;
    }
    if (b.type > 1) {
      defect(policy, rep,
             "corrupt record " + std::to_string(i) + ": bad access type");
      continue;
    }
    if (b.device >= static_cast<std::uint8_t>(DeviceId::kCount)) {
      defect(policy, rep,
             "corrupt record " + std::to_string(i) + ": bad device id");
      continue;
    }
    out.push_back(TraceRecord{addr::block_align(b.address), b.arrival,
                              static_cast<AccessType>(b.type),
                              static_cast<DeviceId>(b.device)});
  }
  rep.records = out.size();
  return out;
}

std::vector<TraceRecord> read_binary_file(const std::string& path,
                                          RecoveryPolicy policy,
                                          TraceReadReport* report) {
  // lint: suppress(io-raw-stream) read-only trace ingest; every batch is CRC-guarded below, so rot is detected without the VFS read shim
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("cannot open for read: " + path);
  return read_binary(is, policy, report);
}

namespace {

struct BatchHeader {
  std::uint32_t magic;
  std::uint16_t version;
  std::uint16_t flags;
  std::uint64_t count;
  std::uint32_t payload_crc;
  std::uint32_t reserved0;
  std::uint64_t reserved1;
};
static_assert(sizeof(BatchHeader) == 32,
              "columns after the header must stay 8-aligned");

/// CRC-32 (IEEE 802.3, same polynomial as the snapshot envelope). The trace
/// layer sits below src/snapshot in the module DAG, so it carries its own
/// copy of the 40-line table routine rather than an upward dependency.
std::uint32_t trace_crc32(const std::uint8_t* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace

void write_batch(std::ostream& os, const TraceBatch& batch) {
  const std::uint64_t n = batch.size();
  BatchHeader h{};
  h.magic = kBatchMagic;
  h.version = kBatchVersion;
  h.count = n;
  // Stage the payload image once so the CRC is computed over exactly the
  // bytes written (the three columns are separate vectors in memory).
  std::vector<std::uint8_t> payload;
  payload.reserve(n * (sizeof(Address) + sizeof(Cycle) + 1));
  const auto append = [&payload](const void* p, std::size_t len) {
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    payload.insert(payload.end(), bytes, bytes + len);
  };
  append(batch.addresses(), n * sizeof(Address));
  append(batch.arrivals(), n * sizeof(Cycle));
  append(batch.meta(), n);
  h.payload_crc = trace_crc32(payload.data(), payload.size());
  os.write(reinterpret_cast<const char*>(&h), sizeof(h));
  os.write(reinterpret_cast<const char*>(payload.data()),
           static_cast<std::streamsize>(payload.size()));
  if (!os) fail("batch write failed");
}

void write_batch_file(const std::string& path, const TraceBatch& batch) {
  std::ostringstream os(std::ios::binary);
  write_batch(os, batch);
  const std::string image = os.str();
  try {
    io::write_file_durable(path, {io::ByteSpan{image.data(), image.size()}});
  } catch (const io::IoError& e) {
    fail(e.what());
  }
}

MappedTraceBatch::MappedTraceBatch(const std::string& path) {
  const std::uint8_t* base = nullptr;
  std::size_t file_len = 0;
#if PLANARIA_TRACE_HAVE_MMAP
  // lint: suppress(io-raw-call) the zero-copy mmap fast path needs a raw fd; a copying io::read_file would defeat the container's point
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open for read: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail("cannot stat: " + path);
  }
  file_len = static_cast<std::size_t>(st.st_size);
  if (file_len > 0) {
    void* m = ::mmap(nullptr, file_len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (m == MAP_FAILED) fail("cannot mmap: " + path);
    map_ = m;
    map_len_ = file_len;
    base = static_cast<const std::uint8_t*>(m);
  } else {
    ::close(fd);
  }
#else
  // lint: suppress(io-raw-stream) read-only mmap fallback; batch CRCs guard the payload, same as the mapped path
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("cannot open for read: " + path);
  fallback_.assign(std::istreambuf_iterator<char>(is),
                   std::istreambuf_iterator<char>());
  base = fallback_.data();
  file_len = fallback_.size();
#endif
  try {
    if (file_len < sizeof(BatchHeader)) fail("truncated batch header");
    BatchHeader h{};
    std::memcpy(&h, base, sizeof(h));
    if (h.magic != kBatchMagic) fail("bad magic (not a planaria batch)");
    if (h.version != kBatchVersion) {
      fail("unsupported batch version " + std::to_string(h.version));
    }
    // The declared count is untrusted: bound the payload it implies by the
    // bytes the file actually holds before dereferencing anything.
    const std::uint64_t per_record = sizeof(Address) + sizeof(Cycle) + 1;
    const std::uint64_t avail = file_len - sizeof(BatchHeader);
    if (h.count > avail / per_record) {
      fail("header claims " + std::to_string(h.count) +
           " records but the file holds only " + std::to_string(avail) +
           " payload bytes");
    }
    const std::size_t n = static_cast<std::size_t>(h.count);
    const std::uint8_t* payload = base + sizeof(BatchHeader);
    const std::size_t payload_len = n * static_cast<std::size_t>(per_record);
    if (trace_crc32(payload, payload_len) != h.payload_crc) {
      fail("batch payload CRC mismatch");
    }
    addresses_ = reinterpret_cast<const Address*>(payload);
    arrivals_ =
        reinterpret_cast<const Cycle*>(payload + n * sizeof(Address));
    meta_ = payload + n * (sizeof(Address) + sizeof(Cycle));
    // Validate every meta byte once so the hot loop can unpack unchecked.
    for (std::size_t i = 0; i < n; ++i) {
      if ((meta_[i] >> 1) >= static_cast<std::uint8_t>(DeviceId::kCount)) {
        fail("corrupt record " + std::to_string(i) + ": bad device id");
      }
    }
    count_ = n;
  } catch (...) {
    reset();
    throw;
  }
}

void MappedTraceBatch::reset() noexcept {
#if PLANARIA_TRACE_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, map_len_);
#endif
  map_ = nullptr;
  map_len_ = 0;
  fallback_.clear();
  addresses_ = nullptr;
  arrivals_ = nullptr;
  meta_ = nullptr;
  count_ = 0;
}

MappedTraceBatch::~MappedTraceBatch() { reset(); }

MappedTraceBatch::MappedTraceBatch(MappedTraceBatch&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_len_(std::exchange(other.map_len_, 0)),
      fallback_(std::move(other.fallback_)),
      addresses_(std::exchange(other.addresses_, nullptr)),
      arrivals_(std::exchange(other.arrivals_, nullptr)),
      meta_(std::exchange(other.meta_, nullptr)),
      count_(std::exchange(other.count_, 0)) {
  other.fallback_.clear();
}

MappedTraceBatch& MappedTraceBatch::operator=(
    MappedTraceBatch&& other) noexcept {
  if (this != &other) {
    reset();
    map_ = std::exchange(other.map_, nullptr);
    map_len_ = std::exchange(other.map_len_, 0);
    fallback_ = std::move(other.fallback_);
    addresses_ = std::exchange(other.addresses_, nullptr);
    arrivals_ = std::exchange(other.arrivals_, nullptr);
    meta_ = std::exchange(other.meta_, nullptr);
    count_ = std::exchange(other.count_, 0);
    other.fallback_.clear();
  }
  return *this;
}

TraceBatch MappedTraceBatch::to_batch() const {
  TraceBatch out;
  out.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) out.push_back(record(i));
  return out;
}

void write_csv(std::ostream& os, const std::vector<TraceRecord>& records) {
  os << "address,arrival,type,device\n";
  for (const auto& r : records) {
    os << "0x" << std::hex << r.address << std::dec << ',' << r.arrival << ','
       << (r.type == AccessType::kRead ? 'R' : 'W') << ','
       << device_name(r.device) << '\n';
  }
  if (!os) fail("csv write failed");
}

std::vector<TraceRecord> read_csv(std::istream& is, RecoveryPolicy policy,
                                  TraceReadReport* report) {
  TraceReadReport local;
  TraceReadReport& rep = report != nullptr ? *report : local;
  std::vector<TraceRecord> out;
  std::string line;
  if (!std::getline(is, line)) {
    if (policy == RecoveryPolicy::kThrow) fail("empty csv");
    rep.note("empty csv");
    return out;
  }
  // Header row is required but its exact spelling is not enforced.
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    // Tolerate Windows line endings: getline keeps the '\r' of a CRLF pair,
    // which used to poison the device-name match of every row.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::string where = " at line " + std::to_string(line_no);
    if (line.size() > kMaxLineBytes) {
      defect(policy, rep, "csv overlong line" + where);
      continue;
    }
    std::istringstream ls(line);
    std::string addr_s, arrival_s, type_s, device_s;
    if (!std::getline(ls, addr_s, ',') || !std::getline(ls, arrival_s, ',') ||
        !std::getline(ls, type_s, ',') || !std::getline(ls, device_s)) {
      defect(policy, rep, "csv parse error" + where);
      continue;
    }
    TraceRecord r;
    try {
      r.address = addr::block_align(std::stoull(addr_s, nullptr, 0));
      r.arrival = std::stoull(arrival_s);
    } catch (const std::exception&) {
      // stoull's own invalid_argument/out_of_range carry no location; rethrow
      // as the reader's uniform defect with the line number.
      defect(policy, rep, "csv bad number" + where);
      continue;
    }
    if (type_s == "R") {
      r.type = AccessType::kRead;
    } else if (type_s == "W") {
      r.type = AccessType::kWrite;
    } else {
      defect(policy, rep, "csv bad access type" + where);
      continue;
    }
    r.device = DeviceId::kCpuBig;
    bool matched = false;
    for (int d = 0; d < static_cast<int>(DeviceId::kCount); ++d) {
      if (device_s == device_name(static_cast<DeviceId>(d))) {
        r.device = static_cast<DeviceId>(d);
        matched = true;
        break;
      }
    }
    if (!matched) {
      defect(policy, rep, "csv bad device" + where);
      continue;
    }
    out.push_back(r);
  }
  rep.records = out.size();
  return out;
}

std::vector<TraceRecord> merge_sorted(
    const std::vector<std::vector<TraceRecord>>& streams) {
  // k-way merge by (arrival, stream index) keeps the merge stable.
  struct Head {
    Cycle arrival;
    std::size_t stream;
    std::size_t pos;
    bool operator>(const Head& o) const {
      return arrival != o.arrival ? arrival > o.arrival : stream > o.stream;
    }
  };
  std::priority_queue<Head, std::vector<Head>, std::greater<>> heap;
  std::size_t total = 0;
  for (std::size_t s = 0; s < streams.size(); ++s) {
    total += streams[s].size();
    if (!streams[s].empty()) heap.push(Head{streams[s][0].arrival, s, 0});
  }
  std::vector<TraceRecord> out;
  out.reserve(total);
  while (!heap.empty()) {
    const Head h = heap.top();
    heap.pop();
    out.push_back(streams[h.stream][h.pos]);
    const std::size_t next = h.pos + 1;
    if (next < streams[h.stream].size()) {
      // The documented precondition ("inputs must each already be sorted")
      // was never checked; an unsorted stream silently produced an unsorted
      // merge that the simulator then rejected far from the cause. O(1) per
      // record: each element is compared against its stream predecessor once,
      // when it becomes the stream head. Under kRecover the merge proceeds
      // best-effort, placing the record by its claimed arrival.
      PLANARIA_REQUIRE_MSG(kTimingMonotonicity,
                           streams[h.stream][next].arrival >= h.arrival,
                           "merge_sorted input stream is not sorted by arrival");
      heap.push(Head{streams[h.stream][next].arrival, h.stream, next});
    }
  }
  return out;
}

}  // namespace planaria::trace
