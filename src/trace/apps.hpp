// Registry of the ten Table 2 applications as calibrated synthetic profiles.
//
// The paper's traces are proprietary phone captures; each profile here mixes
// the four generator components so the app reproduces its *qualitative role*
// in the evaluation:
//   * CFM, QSM, HI3, KO, NBA2 — "patterns SLP excels at": dominated by stable
//     per-page footprints with enough reuse for self-learning (Fig. 9 shows
//     TLP contributing little on these).
//   * Fort — TLP-dominated: pages rarely revisited (SLP starves) but arranged
//     in dense similar-footprint clusters that transfer learning exploits.
//   * Fort, NBA2, PM — high-intensity + noisy: BOP's speculative traffic
//     congests the LPDDR4 queues enough to *raise* AMAT despite a hit-rate
//     gain (the paper's Fig. 7/8 anomaly).
//   * TikT — streaming-heavy (video prefetch buffers), the most
//     BOP/SPP-friendly of the set.
#pragma once

#include <string>
#include <vector>

#include "trace/generator.hpp"

namespace planaria::trace {

/// All ten applications from the paper's Table 2, in table order.
const std::vector<AppProfile>& paper_apps();

/// Lookup by abbreviation ("HoK", "Fort", ...). Throws std::out_of_range
/// for unknown names.
const AppProfile& app_by_name(const std::string& abbr);

/// Abbreviations in table order, for bench row headers.
std::vector<std::string> app_names();

}  // namespace planaria::trace
