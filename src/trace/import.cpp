#include "trace/import.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace planaria::trace {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("trace import: line " + std::to_string(line_no) +
                           ": " + what);
}

/// Per-line defect: throw under kThrow, otherwise skip-and-count against the
/// shared error budget (same policy as the native readers in trace/io.cpp).
void defect(RecoveryPolicy policy, TraceReadReport& report,
            std::size_t line_no, const std::string& what) {
  if (policy == RecoveryPolicy::kThrow) fail(line_no, what);
  report.note("line " + std::to_string(line_no) + ": " + what);
  if (report.errors > kDefaultErrorBudget) {
    fail(line_no, "error budget exhausted (" + std::to_string(report.errors) +
                      " defects)");
  }
}

}  // namespace

std::vector<TraceRecord> read_dramsim2(std::istream& is, RecoveryPolicy policy,
                                       TraceReadReport* report) {
  TraceReadReport local;
  TraceReadReport& rep = report != nullptr ? *report : local;
  std::vector<TraceRecord> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // DRAMSim2 traces allow blank lines and ';' comments.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == ';') continue;
    if (line.size() > kMaxLineBytes) {
      defect(policy, rep, line_no, "overlong line");
      continue;
    }

    std::istringstream ls(line);
    std::string addr_s, type_s;
    std::uint64_t cycle = 0;
    if (!(ls >> addr_s >> type_s >> cycle)) {
      defect(policy, rep, line_no, "expected '<address> <type> <cycle>'");
      continue;
    }
    TraceRecord r;
    try {
      r.address = addr::block_align(std::stoull(addr_s, nullptr, 16));
    } catch (const std::exception&) {
      defect(policy, rep, line_no, "bad address '" + addr_s + "'");
      continue;
    }
    r.arrival = cycle;
    r.device = DeviceId::kCpuBig;
    if (type_s == "P_MEM_RD" || type_s == "P_FETCH" || type_s == "BOFF") {
      r.type = AccessType::kRead;
    } else if (type_s == "P_MEM_WR") {
      r.type = AccessType::kWrite;
    } else {
      defect(policy, rep, line_no, "unknown transaction type '" + type_s + "'");
      continue;
    }
    out.push_back(r);
  }
  // DRAMSim2 traces are cycle-ordered by construction, but tolerate captures
  // that interleave channels by re-sorting stably.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.arrival < b.arrival;
                   });
  rep.records = out.size();
  return out;
}

std::vector<TraceRecord> read_dramsim2_file(const std::string& path,
                                            RecoveryPolicy policy,
                                            TraceReadReport* report) {
  // lint: suppress(io-raw-stream) read-only offline import of a foreign text format; durability is owned by the write side
  std::ifstream is(path);
  if (!is) throw std::runtime_error("trace import: cannot open " + path);
  return read_dramsim2(is, policy, report);
}

void write_dramsim2(std::ostream& os, const std::vector<TraceRecord>& records) {
  for (const auto& r : records) {
    os << "0x" << std::hex << r.address << std::dec << ' '
       << (r.type == AccessType::kRead ? "P_MEM_RD" : "P_MEM_WR") << ' '
       << r.arrival << '\n';
  }
  if (!os) throw std::runtime_error("trace import: dramsim2 write failed");
}

std::vector<TraceRecord> read_champsim_csv(std::istream& is,
                                           RecoveryPolicy policy,
                                           TraceReadReport* report) {
  TraceReadReport local;
  TraceReadReport& rep = report != nullptr ? *report : local;
  std::vector<TraceRecord> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    // Optional header: any line whose first field is not a number.
    if (line_no == 1 && line.find_first_of("0123456789") != 0 &&
        line.compare(0, 2, "0x") != 0) {
      continue;
    }
    if (line.size() > kMaxLineBytes) {
      defect(policy, rep, line_no, "overlong line");
      continue;
    }
    std::istringstream ls(line);
    std::string addr_s, write_s, cycle_s;
    if (!std::getline(ls, addr_s, ',') || !std::getline(ls, write_s, ',') ||
        !std::getline(ls, cycle_s)) {
      defect(policy, rep, line_no, "expected 'address,is_write,cycle'");
      continue;
    }
    TraceRecord r;
    try {
      r.address = addr::block_align(std::stoull(addr_s, nullptr, 0));
      r.type = std::stoul(write_s) != 0 ? AccessType::kWrite : AccessType::kRead;
      r.arrival = std::stoull(cycle_s);
    } catch (const std::exception&) {
      defect(policy, rep, line_no, "bad field in '" + line + "'");
      continue;
    }
    r.device = DeviceId::kCpuBig;
    out.push_back(r);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.arrival < b.arrival;
                   });
  rep.records = out.size();
  return out;
}

}  // namespace planaria::trace
