#include "trace/generator.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "common/bitmap.hpp"
#include "trace/io.hpp"

namespace planaria::trace {

namespace {

// Paces episodes so that `records` entries spread across `horizon` cycles:
// after an episode of n records the clock advances to keep the long-run rate,
// with jitter so arrivals do not beat against DRAM refresh periods.
class Pacer {
 public:
  Pacer(const Pacing& pacing, Rng& rng)
      : pacing_(pacing), rng_(rng),
        mean_gap_(pacing.records == 0
                      ? 1.0
                      : static_cast<double>(pacing.horizon) /
                            static_cast<double>(pacing.records)) {}

  Cycle now() const { return now_; }

  /// Advances past one record inside a burst.
  void step_intra() { now_ += pacing_.intra_gap; }

  /// Advances the idle gap that follows an episode of `n` records. With
  /// burstiness b, a fraction b of gaps collapse to ~0 (records pile into a
  /// frame-style burst) and the remainder stretch by 1/(1-b), preserving the
  /// long-run rate while creating the queue spikes where speculative traffic
  /// actually hurts.
  void episode_gap(std::uint64_t n) {
    if (pacing_.burstiness > 0.0 && rng_.chance(pacing_.burstiness)) {
      now_ += 2;
      return;
    }
    const double stretch =
        pacing_.burstiness > 0.0 ? 1.0 / (1.0 - pacing_.burstiness) : 1.0;
    const double target = mean_gap_ * static_cast<double>(n) * stretch;
    const double jitter =
        1.0 + pacing_.gap_jitter * (2.0 * rng_.next_double() - 1.0);
    double idle = target * jitter -
                  static_cast<double>(n) * static_cast<double>(pacing_.intra_gap);
    if (idle < 1.0) idle = 1.0;
    now_ += static_cast<Cycle>(idle);
  }

 private:
  const Pacing& pacing_;
  Rng& rng_;
  double mean_gap_;
  Cycle now_ = 0;
};

AccessType pick_type(Rng& rng, double write_fraction) {
  return rng.chance(write_fraction) ? AccessType::kWrite : AccessType::kRead;
}

/// Random footprint bitmap with `bits` set blocks out of 64. Footprints are
/// *chunky* — a few contiguous runs of blocks rather than uniform scatter —
/// matching how structures larger than one cache line lay out in a page.
/// The run structure is what gives offset/delta prefetchers (BOP, SPP) their
/// partial credit at the SC level; a snapshot prefetcher is indifferent to it.
PageBitmap random_footprint(Rng& rng, int bits) {
  PageBitmap bm;
  while (bm.popcount() < bits) {
    const int start = static_cast<int>(rng.next_below(kBlocksPerPage));
    const int run = static_cast<int>(rng.next_range(1, 4));
    for (int i = start; i < start + run && i < kBlocksPerPage; ++i) {
      if (bm.popcount() >= bits) break;
      bm.set(i);
    }
  }
  return bm;
}

/// One in-progress page visit: the snapshot's blocks in (shuffled) emission
/// order.
struct Visit {
  PageNumber page = 0;
  int blocks[kBlocksPerPage] = {};
  int count = 0;
  int next = 0;

  bool done() const { return next >= count; }
};

Visit make_visit(PageNumber pn, const PageBitmap& footprint, Rng& rng,
                 double order_entropy = 0.45) {
  Visit v;
  v.page = pn;
  // Emission order: the footprint's maximal runs of consecutive blocks are
  // kept in ascending order internally but the *runs* are shuffled. This is
  // the paper's Observation 1: the overall order is non-deterministic (delta
  // sequences are unpredictable across runs), yet short sequential bursts
  // survive — which is why BOP/SPP retain partial accuracy at the SC.
  int runs[kBlocksPerPage][2];  // [start index in v.blocks, length]
  int run_count = 0;
  int prev = -2;
  footprint.for_each_set([&](int b) {
    if (b != prev + 1) {
      runs[run_count][0] = v.count;
      runs[run_count][1] = 0;
      ++run_count;
    }
    v.blocks[v.count++] = b;
    ++runs[run_count - 1][1];
    prev = b;
  });
  // Shuffle run order, then flatten.
  int order[kBlocksPerPage];
  for (int i = 0; i < run_count; ++i) order[i] = i;
  for (int i = run_count - 1; i > 0; --i) {
    const int j = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(order[i], order[j]);
  }
  int flat[kBlocksPerPage];
  int n = 0;
  for (int r = 0; r < run_count; ++r) {
    const int start = runs[order[r]][0];
    const int len = runs[order[r]][1];
    for (int k = 0; k < len; ++k) flat[n++] = v.blocks[start + k];
  }
  // Degrade sequentiality: each transposition breaks up to two adjacencies.
  // order_entropy ~0.45 leaves roughly half the sequential pairs intact,
  // which is the regime where delta prefetchers get partial (not full)
  // credit — the paper's SPP lands at a 10.8% AMAT gain, far from SLP's.
  const int swaps = static_cast<int>(n * order_entropy);
  for (int t = 0; t < swaps && n > 1; ++t) {
    const auto i = rng.next_below(static_cast<std::uint64_t>(n));
    const auto j = rng.next_below(static_cast<std::uint64_t>(n));
    std::swap(flat[i], flat[j]);
  }
  for (int i = 0; i < n; ++i) v.blocks[i] = flat[i];
  return v;
}

/// Emits `budget` records by interleaving up to kConcurrentVisits snapshot
/// visits, the way a multi-core SoC's traffic actually reaches the memory
/// bus: the aggregate record rate matches the pacing budget while each
/// individual page's visit stretches over concurrency x mean-gap cycles —
/// the latency-hiding window a snapshot prefetcher exploits.
template <typename NextVisit>
void interleave_visits(std::uint64_t budget, DeviceId device,
                       double write_fraction, Rng& rng, Pacer& pacer,
                       std::vector<TraceRecord>& out, NextVisit&& next_visit) {
  constexpr int kConcurrentVisits = 8;
  Visit active[kConcurrentVisits];
  for (auto& v : active) v = next_visit();
  const std::uint64_t target = out.size() + budget;
  while (out.size() < target) {
    auto& v = active[rng.next_below(kConcurrentVisits)];
    if (v.done()) {
      v = next_visit();
      continue;
    }
    out.push_back(TraceRecord{addr::compose(v.page, v.blocks[v.next++]),
                              pacer.now(), pick_type(rng, write_fraction),
                              device});
    pacer.episode_gap(1);
  }
}

}  // namespace

std::vector<TraceRecord> generate_footprint(const FootprintParams& params,
                                            const Pacing& pacing, Rng& rng) {
  if (params.hot_pages <= 0 || params.footprint_min < 1 ||
      params.footprint_max > kBlocksPerPage ||
      params.footprint_min > params.footprint_max) {
    throw std::invalid_argument("generate_footprint: bad params");
  }
  struct HotPage {
    PageNumber pn;
    PageBitmap footprint;
  };
  std::vector<HotPage> pages;
  pages.reserve(static_cast<std::size_t>(params.hot_pages));
  for (int i = 0; i < params.hot_pages; ++i) {
    // Related structures are allocated near each other: a fraction of pages
    // are "twins" of an earlier page — close in address space with a nearly
    // identical footprint. Twin distance is skewed toward small gaps (cubic
    // in a uniform variate), which produces Fig. 5's rising learnable-
    // neighbor curve; the rest are independent scattered pages.
    if (i > 0 && rng.chance(params.twin_fraction)) {
      const HotPage& base =
          pages[rng.next_below(static_cast<std::uint64_t>(i))];
      const double u = rng.next_double();
      const auto dist = static_cast<PageNumber>(
          1 + (params.twin_max_distance - 1) * u * u * u);
      const PageNumber pn =
          rng.chance(0.5) ? base.pn + dist
                          : (base.pn > dist ? base.pn - dist : base.pn + dist);
      PageBitmap fp = base.footprint;
      for (int f = 0; f < params.twin_flip_bits; ++f) {
        const int bit = static_cast<int>(rng.next_below(kBlocksPerPage));
        if (fp.test(bit) && fp.popcount() > params.footprint_min) {
          fp.clear(bit);
        } else {
          fp.set(bit);
        }
      }
      pages.push_back(HotPage{pn, fp});
      continue;
    }
    const PageNumber pn =
        params.base_page + rng.next_below(params.page_span);
    const int bits = static_cast<int>(
        rng.next_range(params.footprint_min, params.footprint_max));
    pages.push_back(HotPage{pn, random_footprint(rng, bits)});
  }

  std::vector<TraceRecord> out;
  out.reserve(pacing.records);
  Pacer pacer(pacing, rng);
  interleave_visits(pacing.records, params.device, params.write_fraction, rng,
                    pacer, out, [&] {
    auto& page = pages[rng.next_zipf(pages.size(), params.zipf_s)];
    // Program-phase drift: occasionally move one block of the snapshot. The
    // constituent stays >90% identical visit-to-visit, matching Fig. 4.
    if (rng.chance(params.mutate_p)) {
      const int victim = page.footprint.first_set();
      if (victim >= 0 && page.footprint.popcount() > params.footprint_min) {
        page.footprint.clear(victim);
      }
      page.footprint.set(static_cast<int>(rng.next_below(kBlocksPerPage)));
    }
    return make_visit(page.pn, page.footprint, rng, params.order_entropy);
  });
  return out;
}

std::vector<TraceRecord> generate_neighbor(const NeighborParams& params,
                                           const Pacing& pacing, Rng& rng) {
  if (params.clusters <= 0 || params.cluster_span <= 0 ||
      params.base_footprint < 1 || params.base_footprint > kBlocksPerPage ||
      params.perturb_bits < 0) {
    throw std::invalid_argument("generate_neighbor: bad params");
  }
  struct Cluster {
    PageNumber origin;
    PageBitmap base;
    std::vector<int> visited;  ///< page offsets already seen in this cluster
  };
  std::vector<Cluster> clusters;
  clusters.reserve(static_cast<std::size_t>(params.clusters));
  for (int c = 0; c < params.clusters; ++c) {
    clusters.push_back(
        Cluster{params.base_page + static_cast<PageNumber>(c) * params.cluster_stride,
                random_footprint(rng, params.base_footprint),
                {}});
  }

  // Per-page perturbation must be *stable* (the same page always deviates
  // from the cluster base in the same bits), so derive it from a hash of the
  // page number rather than fresh randomness.
  const auto perturbed = [&](const Cluster& cl, int offset) {
    PageBitmap bm = cl.base;
    std::uint64_t h = (cl.origin + static_cast<std::uint64_t>(offset)) *
                      0x9E3779B97F4A7C15ull;
    for (int i = 0; i < params.perturb_bits; ++i) {
      h ^= h >> 29;
      h *= 0xBF58476D1CE4E5B9ull;
      const int bit = static_cast<int>(h % kBlocksPerPage);
      if (bm.test(bit)) {
        bm.clear(bit);
      } else {
        bm.set(bit);
      }
    }
    if (bm.empty()) bm.set(0);
    return bm;
  };

  std::vector<TraceRecord> out;
  out.reserve(pacing.records);
  Pacer pacer(pacing, rng);
  std::size_t current = 0;
  int stay_left = 0;
  interleave_visits(pacing.records, params.device, params.write_fraction, rng,
                    pacer, out, [&] {
    if (stay_left == 0) {
      current = rng.next_below(clusters.size());
      stay_left = params.cluster_stay;
    }
    --stay_left;
    Cluster& cl = clusters[current];
    int offset;
    const bool explore = cl.visited.empty() ||
                         (cl.visited.size() <
                              static_cast<std::size_t>(params.cluster_span) &&
                          rng.chance(params.new_page_rate));
    if (explore) {
      offset = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(params.cluster_span)));
      if (std::find(cl.visited.begin(), cl.visited.end(), offset) ==
          cl.visited.end()) {
        cl.visited.push_back(offset);
      }
    } else {
      offset = cl.visited[rng.next_below(cl.visited.size())];
    }
    return make_visit(cl.origin + static_cast<PageNumber>(offset),
                      perturbed(cl, offset), rng);
  });
  return out;
}

std::vector<TraceRecord> generate_stream(const StreamParams& params,
                                         const Pacing& pacing, Rng& rng) {
  if (params.streams <= 0 || params.run_min < 1 ||
      params.run_min > params.run_max || params.block_stride == 0) {
    throw std::invalid_argument("generate_stream: bad params");
  }
  std::vector<Address> cursors;
  cursors.reserve(static_cast<std::size_t>(params.streams));
  for (int s = 0; s < params.streams; ++s) {
    cursors.push_back(
        (params.base_page + static_cast<PageNumber>(s) * params.stream_stride)
        << kPageShift);
  }

  std::vector<TraceRecord> out;
  out.reserve(pacing.records);
  Pacer pacer(pacing, rng);
  while (out.size() < pacing.records) {
    auto& cursor = cursors[rng.next_below(cursors.size())];
    const int run =
        static_cast<int>(rng.next_range(params.run_min, params.run_max));
    const std::size_t before = out.size();
    for (int i = 0; i < run && out.size() < pacing.records; ++i) {
      out.push_back(TraceRecord{cursor, pacer.now(),
                                pick_type(rng, params.write_fraction),
                                params.device});
      cursor += static_cast<Address>(params.block_stride) * kBlockBytes;
      pacer.step_intra();
    }
    pacer.episode_gap(out.size() - before);
  }
  return out;
}

std::vector<TraceRecord> generate_irregular(const IrregularParams& params,
                                            const Pacing& pacing, Rng& rng) {
  if (params.page_span == 0 || params.blocks_min < 1 ||
      params.blocks_min > params.blocks_max ||
      params.blocks_max > kBlocksPerPage) {
    throw std::invalid_argument("generate_irregular: bad params");
  }
  std::vector<TraceRecord> out;
  out.reserve(pacing.records);
  Pacer pacer(pacing, rng);
  while (out.size() < pacing.records) {
    // A pointer-chase dereference drags a handful of scattered lines of one
    // page through the SC, then moves on and never returns.
    const PageNumber pn = params.base_page + rng.next_below(params.page_span);
    const int blocks = static_cast<int>(
        rng.next_range(params.blocks_min, params.blocks_max));
    PageBitmap touched;
    for (int i = 0; i < blocks && out.size() < pacing.records; ++i) {
      int block;
      do {
        block = static_cast<int>(rng.next_below(kBlocksPerPage));
      } while (touched.test(block));
      touched.set(block);
      out.push_back(TraceRecord{addr::compose(pn, block), pacer.now(),
                                pick_type(rng, params.write_fraction),
                                params.device});
      pacer.episode_gap(1);
    }
  }
  return out;
}

std::vector<TraceRecord> generate_app_trace(const AppProfile& app,
                                            std::uint64_t records) {
  if (records == 0) throw std::invalid_argument("generate_app_trace: 0 records");
  const double wsum = app.weight_footprint + app.weight_neighbor +
                      app.weight_stream + app.weight_irregular;
  if (wsum <= 0.0) throw std::invalid_argument("generate_app_trace: weights");

  const Cycle horizon = records * app.mean_gap;
  const auto budget = [&](double w) {
    return static_cast<std::uint64_t>(static_cast<double>(records) * w / wsum);
  };

  Rng rng_fp(app.seed * 4 + 1);
  Rng rng_nb(app.seed * 4 + 2);
  Rng rng_st(app.seed * 4 + 3);
  Rng rng_ir(app.seed * 4 + 4);

  // Footprint/neighbor visits are emitted through the visit interleaver: the
  // per-record pacing is entirely in episode_gap(1), so their intra_gap is 0.
  // Streams arrive denser (DMA-style bursts).
  std::vector<std::vector<TraceRecord>> streams;
  const double b = app.burstiness;
  if (app.weight_footprint > 0.0) {
    streams.push_back(generate_footprint(
        app.footprint,
        Pacing{budget(app.weight_footprint), horizon, 0, 0.5, b}, rng_fp));
  }
  if (app.weight_neighbor > 0.0) {
    streams.push_back(generate_neighbor(
        app.neighbor, Pacing{budget(app.weight_neighbor), horizon, 0, 0.5, b},
        rng_nb));
  }
  if (app.weight_stream > 0.0) {
    streams.push_back(generate_stream(
        app.stream, Pacing{budget(app.weight_stream), horizon, 6, 0.5, b},
        rng_st));
  }
  if (app.weight_irregular > 0.0) {
    streams.push_back(generate_irregular(
        app.irregular, Pacing{budget(app.weight_irregular), horizon, 8, 0.5, b},
        rng_ir));
  }
  return merge_sorted(streams);
}

std::vector<std::vector<TraceRecord>> generate_app_traces(
    const std::vector<AppProfile>& apps, std::uint64_t records,
    common::ThreadPool* pool) {
  std::vector<std::vector<TraceRecord>> out(apps.size());
  const auto generate = [&](std::size_t i) {
    out[i] = generate_app_trace(apps[i], records);
  };
  if (pool != nullptr && pool->size() > 1 && apps.size() > 1) {
    pool->parallel_for(apps.size(), generate);
  } else {
    for (std::size_t i = 0; i < apps.size(); ++i) generate(i);
  }
  return out;
}

}  // namespace planaria::trace
