// Trace serialization: a compact binary format (for captured/generated trace
// files) and a human-readable CSV format (for interchange and debugging).
//
// Binary layout: 16-byte header {magic "PLTR", u16 version, u16 flags,
// u64 record count}, then packed 24-byte records {u64 address, u64 arrival,
// u8 type, u8 device, 6B pad}. Little-endian, as every supported target is.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace planaria::trace {

inline constexpr std::uint32_t kTraceMagic = 0x52544C50;  // "PLTR"
inline constexpr std::uint16_t kTraceVersion = 1;

/// Writes `records` in binary format. Throws std::runtime_error on IO failure.
void write_binary(std::ostream& os, const std::vector<TraceRecord>& records);
void write_binary_file(const std::string& path,
                       const std::vector<TraceRecord>& records);

/// Reads a binary trace. Throws std::runtime_error on malformed input
/// (bad magic, version mismatch, truncated payload).
std::vector<TraceRecord> read_binary(std::istream& is);
std::vector<TraceRecord> read_binary_file(const std::string& path);

/// CSV: one "address,arrival,type,device" row per record, with a header row.
/// type is R|W; device is the device_name() string.
void write_csv(std::ostream& os, const std::vector<TraceRecord>& records);
std::vector<TraceRecord> read_csv(std::istream& is);

/// Merges multiple per-device streams into one arrival-time-ordered trace.
/// Records with equal arrival keep their relative input-stream order
/// (stable). Inputs must each already be sorted by arrival.
std::vector<TraceRecord> merge_sorted(
    const std::vector<std::vector<TraceRecord>>& streams);

}  // namespace planaria::trace
