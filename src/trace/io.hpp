// Trace serialization: a compact binary format (for captured/generated trace
// files) and a human-readable CSV format (for interchange and debugging).
//
// Binary layout: 16-byte header {magic "PLTR", u16 version, u16 flags,
// u64 record count}, then packed 24-byte records {u64 address, u64 arrival,
// u8 type, u8 device, 6B pad}. Little-endian, as every supported target is.
//
// Every reader hardens the same boundary: trace files are external input
// (captures copied off devices, tool output, downloads), so nothing from the
// byte stream is trusted before it is bounds-checked — in particular the
// binary header's record count is validated against the bytes the stream
// actually holds *before* any allocation sized from it. Beyond that, each
// reader takes a RecoveryPolicy: kThrow (default) raises std::runtime_error
// with a precise location on the first defect, while kRecover salvages what
// is intact — the complete-record prefix of a truncated binary file, every
// well-formed line of a damaged text file — and tallies what it skipped in a
// TraceReadReport, up to an error budget that distinguishes a damaged file
// from a wrong-format one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/batch.hpp"
#include "trace/record.hpp"

namespace planaria::trace {

inline constexpr std::uint32_t kTraceMagic = 0x52544C50;  // "PLTR"
inline constexpr std::uint16_t kTraceVersion = 1;

inline constexpr std::uint32_t kBatchMagic = 0x42544C50;  // "PLTB"
inline constexpr std::uint16_t kBatchVersion = 1;

/// How a reader responds to malformed input.
enum class RecoveryPolicy : std::uint8_t {
  kThrow = 0,  ///< std::runtime_error on the first defect (default)
  kRecover,    ///< skip/salvage, count in a TraceReadReport, keep reading
};

/// Damaged records a kRecover read tolerates before concluding the input is
/// not merely corrupted but the wrong format entirely, and throwing.
inline constexpr std::uint64_t kDefaultErrorBudget = 256;

/// Error messages retained verbatim in a report; later defects only count.
inline constexpr std::size_t kMaxReportedErrors = 8;

/// Longest text line any reader accepts. A line past this bound is malformed
/// input (or not a text trace at all), not data — rejecting it early keeps a
/// binary blob fed to a text reader from ballooning one std::string.
inline constexpr std::size_t kMaxLineBytes = 4096;

/// What a kRecover read skipped; also usable with kThrow (stays all-zero on
/// the success path, since the first defect throws).
struct TraceReadReport {
  std::uint64_t records = 0;  ///< records delivered to the caller
  std::uint64_t errors = 0;   ///< malformed records/lines skipped
  bool truncated = false;     ///< stream ended before the declared payload
  std::vector<std::string> messages;  ///< first kMaxReportedErrors defects

  /// Counts one defect, retaining the message while under the cap.
  void note(std::string message);
};

/// Writes `records` in binary format. Throws std::runtime_error on IO failure.
void write_binary(std::ostream& os, const std::vector<TraceRecord>& records);
void write_binary_file(const std::string& path,
                       const std::vector<TraceRecord>& records);

/// Reads a binary trace. kThrow: std::runtime_error on malformed input (bad
/// magic, version mismatch, header count exceeding the stream's bytes,
/// truncated payload, bad enum bytes). kRecover: salvages the complete-record
/// prefix of a truncated stream and skips records with bad enum bytes; a bad
/// magic or version still throws — a file this reader cannot even identify
/// has no salvageable prefix.
std::vector<TraceRecord> read_binary(std::istream& is,
                                     RecoveryPolicy policy = RecoveryPolicy::kThrow,
                                     TraceReadReport* report = nullptr);
std::vector<TraceRecord> read_binary_file(const std::string& path,
                                          RecoveryPolicy policy = RecoveryPolicy::kThrow,
                                          TraceReadReport* report = nullptr);

/// CSV: one "address,arrival,type,device" row per record, with a header row.
/// type is R|W; device is the device_name() string. Windows line endings are
/// accepted. kRecover skips malformed rows (within the error budget) instead
/// of throwing.
void write_csv(std::ostream& os, const std::vector<TraceRecord>& records);
std::vector<TraceRecord> read_csv(std::istream& is,
                                  RecoveryPolicy policy = RecoveryPolicy::kThrow,
                                  TraceReadReport* report = nullptr);

/// Columnar (SoA) trace container format, designed to be mapped rather than
/// parsed: a 32-byte header {magic "PLTB", u16 version, u16 flags, u64 record
/// count, u32 payload CRC32, 12B reserved}, then three contiguous columns —
/// u64 addresses[count], u64 arrivals[count], u8 meta[count] (TraceBatch
/// packing: bit 0 type, bits 1..7 device). Both 8-byte columns start at
/// 8-aligned offsets, so a page-aligned mapping can serve them zero-copy.
/// Discipline mirrors the snapshot envelope: every length is validated
/// against the bytes actually present before anything is trusted, the CRC
/// covers the whole payload, and every meta byte is range-checked at open —
/// after which the hot loop consumes the columns without per-record checks.
void write_batch(std::ostream& os, const TraceBatch& batch);
void write_batch_file(const std::string& path, const TraceBatch& batch);

/// Read-only view of a "PLTB" file. Uses mmap where available (the columns
/// alias the page cache; nothing is copied) with a read-into-memory fallback.
/// The constructor throws std::runtime_error on any malformed input: bad
/// magic/version, a count the file's bytes cannot back, CRC mismatch, or an
/// out-of-range meta byte.
class MappedTraceBatch {
 public:
  explicit MappedTraceBatch(const std::string& path);
  ~MappedTraceBatch();
  MappedTraceBatch(MappedTraceBatch&& other) noexcept;
  MappedTraceBatch& operator=(MappedTraceBatch&& other) noexcept;
  MappedTraceBatch(const MappedTraceBatch&) = delete;
  MappedTraceBatch& operator=(const MappedTraceBatch&) = delete;

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  const Address* addresses() const { return addresses_; }
  const Cycle* arrivals() const { return arrivals_; }
  const std::uint8_t* meta() const { return meta_; }

  TraceRecord record(std::size_t i) const {
    return TraceRecord{addresses_[i], arrivals_[i],
                       TraceBatch::meta_type(meta_[i]),
                       TraceBatch::meta_device(meta_[i])};
  }

  /// Owning copy, for callers that outlive the mapping.
  TraceBatch to_batch() const;

 private:
  void reset() noexcept;

  void* map_ = nullptr;            ///< mmap base (null under the fallback)
  std::size_t map_len_ = 0;
  std::vector<std::uint8_t> fallback_;  ///< owning buffer when mmap is absent
  const Address* addresses_ = nullptr;
  const Cycle* arrivals_ = nullptr;
  const std::uint8_t* meta_ = nullptr;
  std::size_t count_ = 0;
};

/// Merges multiple per-device streams into one arrival-time-ordered trace.
/// Records with equal arrival keep their relative input-stream order
/// (stable). Inputs must each already be sorted by arrival; that precondition
/// is now enforced with an O(1)-per-record timing-monotonicity contract that
/// fires on the first out-of-order pair (under kRecover the merge proceeds
/// best-effort, placing the offending record by its claimed arrival).
std::vector<TraceRecord> merge_sorted(
    const std::vector<std::vector<TraceRecord>>& streams);

}  // namespace planaria::trace
