// Structure-of-arrays trace storage (the hot-path spine).
//
// The simulator's inner loops touch exactly three things per record: the
// address (channel routing + cache/prefetcher coordinates), the arrival cycle
// (DRAM clock advance) and the access metadata (read/write + device). The
// AoS TraceRecord keeps those in one padded 24-byte struct, so a sweep cell
// streaming a trace drags a third of each cache line as padding. TraceBatch
// stores the same records as three parallel columns — u64 addresses, u64
// arrivals, one packed meta byte — cutting the bytes-per-record the spine
// streams from 24 to 17 and letting each column prefetch independently.
//
// Meta packing: bit 0 = access type (1 = write), bits 1..7 = device id. Both
// enums are validated on unpack by construction (pack_meta is the only
// producer inside the library; the binary reader in trace/io re-validates).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace planaria::trace {

class TraceBatch {
 public:
  TraceBatch() = default;
  explicit TraceBatch(const std::vector<TraceRecord>& records) {
    assign(records.data(), records.data() + records.size());
  }

  static std::uint8_t pack_meta(AccessType type, DeviceId device) {
    return static_cast<std::uint8_t>(
        (static_cast<std::uint8_t>(device) << 1) |
        (type == AccessType::kWrite ? 1u : 0u));
  }
  static AccessType meta_type(std::uint8_t meta) {
    return (meta & 1u) != 0 ? AccessType::kWrite : AccessType::kRead;
  }
  static DeviceId meta_device(std::uint8_t meta) {
    return static_cast<DeviceId>(meta >> 1);
  }

  void assign(const TraceRecord* begin, const TraceRecord* end) {
    clear();
    reserve(static_cast<std::size_t>(end - begin));
    for (const TraceRecord* p = begin; p != end; ++p) push_back(*p);
  }

  void push_back(const TraceRecord& rec) {
    addresses_.push_back(rec.address);
    arrivals_.push_back(rec.arrival);
    meta_.push_back(pack_meta(rec.type, rec.device));
  }

  void reserve(std::size_t n) {
    addresses_.reserve(n);
    arrivals_.reserve(n);
    meta_.reserve(n);
  }

  void clear() {
    addresses_.clear();
    arrivals_.clear();
    meta_.clear();
  }

  std::size_t size() const { return addresses_.size(); }
  bool empty() const { return addresses_.empty(); }

  const Address* addresses() const { return addresses_.data(); }
  const Cycle* arrivals() const { return arrivals_.data(); }
  const std::uint8_t* meta() const { return meta_.data(); }

  /// Reassembles record `i` (bounds unchecked — hot path).
  TraceRecord record(std::size_t i) const {
    return TraceRecord{addresses_[i], arrivals_[i], meta_type(meta_[i]),
                       meta_device(meta_[i])};
  }

  /// AoS round-trip, for interchange with the record-based APIs.
  std::vector<TraceRecord> to_records() const {
    std::vector<TraceRecord> out;
    out.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) out.push_back(record(i));
    return out;
  }

  friend bool operator==(const TraceBatch&, const TraceBatch&) = default;

 private:
  std::vector<Address> addresses_;
  std::vector<Cycle> arrivals_;
  std::vector<std::uint8_t> meta_;
};

}  // namespace planaria::trace
