#include "io/vfs.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#define PLANARIA_IO_HAVE_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#endif

namespace planaria::io {

namespace {

/// splitmix64 finalizer — the seed expander the xoshiro authors recommend,
/// and the same mixing step FaultPlan::for_session uses for decorrelation.
std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t z = x + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::string errno_detail(const std::string& fallback) {
  return errno != 0 ? std::string(std::strerror(errno)) : fallback;
}

/// RAII stdio handle; close() disarms it so the success path can check the
/// close result explicitly while the error path still cleans up.
struct File {
  std::FILE* f = nullptr;
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
  int close() {
    std::FILE* h = f;
    f = nullptr;
    return h != nullptr ? std::fclose(h) : 0;
  }
};

/// fsyncs the directory holding `path` so the rename's directory entry is on
/// stable storage. Opening a directory read-only is not portable to every
/// filesystem, so an open failure is tolerated; a failed fsync on an opened
/// directory is a real durability loss and throws.
void fsync_parent_dir(const std::string& path) {
#if PLANARIA_IO_HAVE_POSIX
  const std::size_t slash = path.find_last_of('/');
  std::string dir;
  if (slash == std::string::npos) {
    dir = ".";
  } else if (slash == 0) {
    dir = "/";
  } else {
    dir = path.substr(0, slash);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    throw IoError("fsync-dir", dir, errno_detail("fsync failed"));
  }
#else
  (void)path;
#endif
}

/// Truncates the *final* file to `len` bytes — the observable aftermath of a
/// lost fsync followed by a power cut: the rename's directory entry
/// survived, the tail pages did not.
void truncate_file(const std::string& path, std::size_t len) {
#if PLANARIA_IO_HAVE_POSIX
  if (::truncate(path.c_str(), static_cast<off_t>(len)) != 0) {
    throw IoError("truncate", path, errno_detail("truncate failed"));
  }
#else
  std::vector<std::uint8_t> bytes = read_file(path);
  bytes.resize(len < bytes.size() ? len : bytes.size());
  File out;
  out.f = std::fopen(path.c_str(), "wb");
  if (out.f == nullptr) throw IoError("truncate", path, "cannot reopen");
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), out.f) != bytes.size()) {
    throw IoError("truncate", path, "rewrite failed");
  }
#endif
}

IoFaultInjector* g_shim = nullptr;

}  // namespace

const char* io_fault_class_name(IoFaultClass fault_class) {
  switch (fault_class) {
    case IoFaultClass::kReadError: return "read-error";
    case IoFaultClass::kWriteError: return "write-error";
    case IoFaultClass::kEnospc: return "enospc";
    case IoFaultClass::kTornWrite: return "torn-write";
    case IoFaultClass::kRenameFail: return "rename-fail";
    case IoFaultClass::kFsyncLoss: return "fsync-loss";
    case IoFaultClass::kBitRot: return "bit-rot";
    case IoFaultClass::kCount: break;
  }
  return "?";
}

Stream::Stream(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    word = z ^ (z >> 31);
  }
}

std::uint64_t Stream::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Stream::next_below(std::uint64_t bound) {
  // Multiply-shift range reduction (Lemire); bias is negligible for fault
  // target selection and the method is branch-free and platform-stable.
  const unsigned __int128 m =
      static_cast<unsigned __int128>(next()) * bound;
  return static_cast<std::uint64_t>(m >> 64);
}

bool Stream::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return (static_cast<double>(next() >> 11) * 0x1.0p-53) < p;
}

bool IoFaultPlan::any_enabled() const {
  for (const double r : rate) {
    if (r > 0.0) return true;
  }
  return false;
}

void IoFaultPlan::validate() const {
  for (int i = 0; i < kIoFaultClassCount; ++i) {
    if (rate[i] < 0.0 || rate[i] > 1.0) {
      throw std::invalid_argument(
          std::string("io fault rate for ") +
          io_fault_class_name(static_cast<IoFaultClass>(i)) +
          " outside [0, 1]");
    }
  }
}

IoFaultPlan IoFaultPlan::single(IoFaultClass fault_class, double rate_value,
                                std::uint64_t seed_value) {
  IoFaultPlan plan;
  plan.seed = seed_value;
  plan.rate[static_cast<int>(fault_class)] = rate_value;
  plan.validate();
  return plan;
}

IoFaultPlan IoFaultPlan::for_site(std::uint64_t site_id) const {
  IoFaultPlan derived = *this;
  derived.seed = mix64(seed ^ mix64(site_id));
  return derived;
}

IoFaultInjector::IoFaultInjector(const IoFaultPlan& plan, std::uint64_t stream)
    : plan_(plan),
      decision_{
          Stream(mix64(plan.seed ^ mix64(stream * 16 + 0))),
          Stream(mix64(plan.seed ^ mix64(stream * 16 + 1))),
          Stream(mix64(plan.seed ^ mix64(stream * 16 + 2))),
          Stream(mix64(plan.seed ^ mix64(stream * 16 + 3))),
          Stream(mix64(plan.seed ^ mix64(stream * 16 + 4))),
          Stream(mix64(plan.seed ^ mix64(stream * 16 + 5))),
          Stream(mix64(plan.seed ^ mix64(stream * 16 + 6))),
      },
      aux_{
          Stream(mix64(plan.seed ^ mix64(stream * 16 + 8))),
          Stream(mix64(plan.seed ^ mix64(stream * 16 + 9))),
          Stream(mix64(plan.seed ^ mix64(stream * 16 + 10))),
          Stream(mix64(plan.seed ^ mix64(stream * 16 + 11))),
          Stream(mix64(plan.seed ^ mix64(stream * 16 + 12))),
          Stream(mix64(plan.seed ^ mix64(stream * 16 + 13))),
          Stream(mix64(plan.seed ^ mix64(stream * 16 + 14))),
      } {
  plan_.validate();
}

bool IoFaultInjector::roll(IoFaultClass fault_class) {
  const int i = static_cast<int>(fault_class);
  if (plan_.rate[i] <= 0.0) return false;
  return decision_[i].chance(plan_.rate[i]);
}

std::uint64_t IoFaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : injected_) total += n;
  return total;
}

IoFaultInjector* set_fault_injector(IoFaultInjector* shim) {
  IoFaultInjector* prev = g_shim;
  g_shim = shim;
  return prev;
}

IoFaultInjector* fault_injector() { return g_shim; }

void write_file_durable(const std::string& path,
                        const std::vector<ByteSpan>& spans) {
  std::size_t total = 0;
  for (const ByteSpan& s : spans) total += s.size;
  IoFaultInjector* shim = fault_injector();
  const std::string tmp = path + ".tmp";

  if (shim != nullptr && shim->roll(IoFaultClass::kWriteError)) {
    shim->record(IoFaultClass::kWriteError);
    throw IoError("write", tmp, "injected I/O error");
  }
  // A fired ENOSPC/torn decision picks its cut point on the class's private
  // target stream: ENOSPC lands a prefix then fails the operation; a torn
  // write lands a prefix and *succeeds* — the silent-corruption case the CRC
  // envelope above must catch.
  bool enospc = false;
  bool torn = false;
  std::size_t limit = total;
  if (shim != nullptr && shim->roll(IoFaultClass::kEnospc)) {
    enospc = true;
    limit = static_cast<std::size_t>(
        shim->rng(IoFaultClass::kEnospc).next_below(total + 1));
  } else if (shim != nullptr && total > 0 &&
             shim->roll(IoFaultClass::kTornWrite)) {
    torn = true;
    limit = static_cast<std::size_t>(
        shim->rng(IoFaultClass::kTornWrite).next_below(total));
  }

  {
    File out;
    errno = 0;
    out.f = std::fopen(tmp.c_str(), "wb");
    if (out.f == nullptr) {
      throw IoError("create", tmp, errno_detail("cannot create"));
    }
    std::size_t written = 0;
    for (const ByteSpan& s : spans) {
      if (written >= limit) break;
      const std::size_t take = s.size < limit - written ? s.size
                                                        : limit - written;
      if (take > 0 && std::fwrite(s.data, 1, take, out.f) != take) {
        out.close();
        std::remove(tmp.c_str());
        throw IoError("write", tmp, errno_detail("short write"));
      }
      written += take;
    }
    if (std::fflush(out.f) != 0) {
      out.close();
      std::remove(tmp.c_str());
      throw IoError("write", tmp, errno_detail("flush failed"));
    }
    if (enospc) {
      out.close();
      std::remove(tmp.c_str());
      shim->record(IoFaultClass::kEnospc);
      throw IoError("write", tmp, "injected ENOSPC after " +
                                      std::to_string(limit) + " of " +
                                      std::to_string(total) + " bytes");
    }
    bool fsync_lost = false;
    if (shim != nullptr && shim->roll(IoFaultClass::kFsyncLoss)) {
      fsync_lost = true;  // fsync "succeeds" without persisting anything
    } else {
#if PLANARIA_IO_HAVE_POSIX
      if (::fsync(::fileno(out.f)) != 0) {
        out.close();
        std::remove(tmp.c_str());
        throw IoError("fsync", tmp, errno_detail("fsync failed"));
      }
#endif
    }
    if (out.close() != 0) {
      std::remove(tmp.c_str());
      throw IoError("close", tmp, errno_detail("close failed"));
    }
    if (shim != nullptr && shim->roll(IoFaultClass::kRenameFail)) {
      std::remove(tmp.c_str());
      shim->record(IoFaultClass::kRenameFail);
      throw IoError("rename", tmp + " -> " + path, "injected rename failure");
    }
    errno = 0;
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      throw IoError("rename", tmp + " -> " + path,
                    errno_detail("rename failed"));
    }
    // A torn write only *applies* once the truncated image is visible at
    // `path` — a torn tmp that never survived its rename corrupted nothing.
    if (torn) shim->record(IoFaultClass::kTornWrite);
    if (fsync_lost && written > 0) {
      // Power-cut aftermath of the lied-about fsync: the rename's directory
      // entry survived, a seeded suffix of the data pages did not.
      const std::size_t keep = static_cast<std::size_t>(
          shim->rng(IoFaultClass::kFsyncLoss).next_below(written));
      truncate_file(path, keep);
      shim->record(IoFaultClass::kFsyncLoss);
    }
  }
  fsync_parent_dir(path);
}

void write_file_durable(const std::string& path,
                        const std::vector<std::uint8_t>& bytes) {
  write_file_durable(path, {ByteSpan{bytes.data(), bytes.size()}});
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  IoFaultInjector* shim = fault_injector();
  if (shim != nullptr && shim->roll(IoFaultClass::kReadError)) {
    shim->record(IoFaultClass::kReadError);
    throw IoError("read", path, "injected I/O error");
  }
  File in;
  errno = 0;
  in.f = std::fopen(path.c_str(), "rb");
  if (in.f == nullptr) {
    throw IoError("open", path, errno_detail("cannot open"));
  }
  if (std::fseek(in.f, 0, SEEK_END) != 0) {
    throw IoError("read", path, "seek failed");
  }
  const long size = std::ftell(in.f);
  if (size < 0 || std::fseek(in.f, 0, SEEK_SET) != 0) {
    throw IoError("read", path, "seek failed");
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (!bytes.empty() &&
      std::fread(bytes.data(), 1, bytes.size(), in.f) != bytes.size()) {
    throw IoError("read", path, errno_detail("short read"));
  }
  if (shim != nullptr && !bytes.empty() &&
      shim->roll(IoFaultClass::kBitRot)) {
    const std::uint64_t bit =
        shim->rng(IoFaultClass::kBitRot).next_below(bytes.size() * 8);
    bytes[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    shim->record(IoFaultClass::kBitRot);
  }
  return bytes;
}

void rename_file(const std::string& from, const std::string& to) {
  IoFaultInjector* shim = fault_injector();
  if (shim != nullptr && shim->roll(IoFaultClass::kRenameFail)) {
    shim->record(IoFaultClass::kRenameFail);
    throw IoError("rename", from + " -> " + to, "injected rename failure");
  }
  errno = 0;
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    throw IoError("rename", from + " -> " + to,
                  errno_detail("rename failed"));
  }
  fsync_parent_dir(to);
}

bool append_line(const std::string& path, const std::string& text) noexcept {
  IoFaultInjector* shim = fault_injector();
  if (shim != nullptr) {
    // Either class fails the append whole; a torn tail on an append-only
    // JSON-lines file is modelled by the parser-side hardening instead.
    const bool write_error = shim->roll(IoFaultClass::kWriteError);
    const bool enospc = shim->roll(IoFaultClass::kEnospc);
    if (write_error) {
      shim->record(IoFaultClass::kWriteError);
      return false;
    }
    if (enospc) {
      shim->record(IoFaultClass::kEnospc);
      return false;
    }
  }
  File out;
  out.f = std::fopen(path.c_str(), "a");
  if (out.f == nullptr) return false;
  if (std::fputs(text.c_str(), out.f) == EOF) {
    return false;
  }
  return out.close() == 0;
}

bool exists(const std::string& path) noexcept {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

bool remove_file(const std::string& path) noexcept {
  std::error_code ec;
  return std::filesystem::remove(path, ec);
}

}  // namespace planaria::io
