// Storage VFS: every file the system writes or reads goes through here.
//
// The resilience layers above (snapshot envelopes, checkpoint rotation, the
// serve envelope, PLTB trace containers, sweep cells, the bench trajectory)
// were built on an I/O substrate they trusted blindly: rename without fsync,
// error codes dropped, no failure path at all on appends. This module is the
// single choke point that fixes both halves of that problem:
//
//   * Durable write discipline. write_file_durable() stages bytes in
//     "<path>.tmp", fsyncs the file, renames it over `path`, then fsyncs the
//     parent directory — so after it returns, the bytes survive a power cut,
//     and a crash at any instant leaves `path` holding either the old
//     complete file or the new complete file, never a torn hybrid and never
//     a zero-length directory entry (the rename-without-dir-fsync hole).
//   * Injectable deterministic faults. An IoFaultInjector installed through
//     set_fault_injector() turns every operation into a seeded Bernoulli
//     trial per storage-fault class — EIO on read/write, ENOSPC mid-write,
//     torn/short writes at a seeded byte offset, rename failure, fsync loss,
//     read-side bit-rot. The shim mirrors the src/fault idiom exactly: two
//     private xoshiro streams per class (decision + target), roll()/record()
//     separation so injected() counts *applied* faults, and a splitmix64
//     for_site() derivative so independent drill sites draw decorrelated
//     sequences from one plan. planaria-audit --stage storm drives the whole
//     recovery chain through this shim.
//
// Layering: io sits below trace and snapshot (both route their file writes
// here), so like the snapshot codec it depends on nothing — it carries its
// own xoshiro copy instead of reaching up into common/rng.hpp.
//
// Failure contract: write_file_durable/read_file/rename_file throw IoError
// (callers in higher layers translate into their own error types);
// append_line returns false instead — a trajectory append is advisory and
// must never take down a bench run.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace planaria::io {

/// Raised on any storage failure, real or injected. The message always names
/// the operation and the path so a drill log reads like a kernel log.
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& op, const std::string& path,
          const std::string& detail)
      : std::runtime_error("io: " + op + " " + path + ": " + detail) {}
};

/// Every injectable storage fault, one per failure mode a disk can serve up.
enum class IoFaultClass : std::uint8_t {
  kReadError = 0,  ///< EIO surfaced from a read
  kWriteError,     ///< EIO surfaced from a write, before any byte lands
  kEnospc,         ///< device full mid-write; a prefix lands, the op fails
  kTornWrite,      ///< only a seeded prefix persists, yet the op "succeeds"
  kRenameFail,     ///< rename into place fails; the old file is untouched
  kFsyncLoss,      ///< fsync lied: a seeded suffix of the renamed file is lost
  kBitRot,         ///< one seeded bit of a read's payload flips in flight
  kCount,
};

inline constexpr int kIoFaultClassCount = static_cast<int>(IoFaultClass::kCount);

const char* io_fault_class_name(IoFaultClass fault_class);

/// xoshiro256** stream, seeded via splitmix64 — a local copy of the
/// common/rng.hpp generator (io sits below common's library in the link
/// order, and the two must not entangle). Only the operations the fault shim
/// needs.
class Stream {
 public:
  explicit Stream(std::uint64_t seed);
  std::uint64_t next();
  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);
  /// Bernoulli trial with probability p.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
};

/// Which storage faults to inject, how often, from which seed. A default
/// plan injects nothing; the zero-rate path consumes no randomness, so an
/// unarmed shim leaves every operation byte-identical to no shim at all.
struct IoFaultPlan {
  std::uint64_t seed = 0x10F4017;
  /// Per-opportunity injection probability per class, in [0, 1].
  double rate[kIoFaultClassCount] = {};

  bool enabled(IoFaultClass fault_class) const {
    return rate[static_cast<int>(fault_class)] > 0.0;
  }
  bool any_enabled() const;

  /// Throws std::invalid_argument on out-of-range rates.
  void validate() const;

  /// Plan with exactly one class armed — the storm audit's unit of isolation.
  static IoFaultPlan single(IoFaultClass fault_class, double rate,
                            std::uint64_t seed);

  /// Site-scoped derivative: same classes and rates, seed re-mixed with the
  /// site id through a splitmix64 finalizer, so each drill site (a checkpoint
  /// directory, a trace container, a serve envelope) draws a fully
  /// decorrelated fault sequence from one plan.
  IoFaultPlan for_site(std::uint64_t site_id) const;
};

/// Turns an IoFaultPlan into a deterministic decision sequence. Mirrors
/// fault::FaultInjector: each class owns TWO private streams — one for the
/// inject/skip decision, one for choosing the corruption target (the byte
/// offset of a torn write, the bit of a rot flip) — so a decision that does
/// not fire never consumes target randomness, and arming one class never
/// perturbs another's stream. Not thread-safe; install one per serial drill.
class IoFaultInjector {
 public:
  explicit IoFaultInjector(const IoFaultPlan& plan, std::uint64_t stream = 0);

  /// One Bernoulli decision on the class's private stream. Consumes no
  /// randomness when the class is disabled.
  bool roll(IoFaultClass fault_class);

  /// Target-selection stream for a fired decision. Never consumed by roll().
  Stream& rng(IoFaultClass fault_class) {
    return aux_[static_cast<int>(fault_class)];
  }

  /// The applying site acknowledges one injected fault; injected() counts
  /// *applied* faults (a torn-write roll against an empty payload, for
  /// example, is a decision but not a fault).
  void record(IoFaultClass fault_class) {
    ++injected_[static_cast<int>(fault_class)];
  }

  std::uint64_t injected(IoFaultClass fault_class) const {
    return injected_[static_cast<int>(fault_class)];
  }
  std::uint64_t total_injected() const;

  const IoFaultPlan& plan() const { return plan_; }

 private:
  IoFaultPlan plan_;
  Stream decision_[kIoFaultClassCount];
  Stream aux_[kIoFaultClassCount];
  std::uint64_t injected_[kIoFaultClassCount] = {};
};

/// Installs `shim` as the process-wide fault tap (nullptr disarms); returns
/// the previous one. Production never installs a shim — the hooks then cost
/// one pointer load per operation.
IoFaultInjector* set_fault_injector(IoFaultInjector* shim);
IoFaultInjector* fault_injector();

/// RAII arm/disarm for tests and audit drills.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(IoFaultInjector* shim)
      : prev_(set_fault_injector(shim)) {}
  ~ScopedFaultInjector() { set_fault_injector(prev_); }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  IoFaultInjector* prev_;
};

/// One contiguous piece of a file image. write_file_durable takes a list of
/// spans so callers with a separately-held header and payload (the snapshot
/// envelope, the PLTB container) need not concatenate them first.
struct ByteSpan {
  const void* data = nullptr;
  std::size_t size = 0;
};

/// Durable atomic write: stage in "<path>.tmp", fsync the file, rename over
/// `path`, fsync the parent directory. After a clean return the bytes are on
/// stable storage; after a throw, `path` still holds whatever complete file
/// it held before (the tmp is removed best-effort). Throws IoError on any
/// real or injected failure.
void write_file_durable(const std::string& path,
                        const std::vector<ByteSpan>& spans);
void write_file_durable(const std::string& path,
                        const std::vector<std::uint8_t>& bytes);

/// Whole-file read. Throws IoError when the file cannot be opened or read
/// (real or injected EIO); an armed bit-rot class may flip one seeded bit of
/// the returned image — which is exactly what the CRC layers above exist to
/// catch.
std::vector<std::uint8_t> read_file(const std::string& path);

/// Durable rename: `from` must exist; after return `to` names it and the
/// parent directory entry is synced. Throws IoError on real or injected
/// failure, leaving `from` and any previous `to` untouched on the injected
/// path.
void rename_file(const std::string& from, const std::string& to);

/// Appends `text` (caller includes any trailing newline) to `path`, creating
/// it if needed. Returns false — never throws — on real or injected failure:
/// trajectory appends are advisory.
bool append_line(const std::string& path, const std::string& text) noexcept;

/// True when `path` names an existing file (never throws).
bool exists(const std::string& path) noexcept;

/// Best-effort unlink; returns true when the entry was removed.
bool remove_file(const std::string& path) noexcept;

}  // namespace planaria::io
