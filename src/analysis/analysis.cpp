#include "analysis/analysis.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace planaria::analysis {

void StreamSummary::add(double value) {
  sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), value),
                 value);
}

double StreamSummary::quantile(double q) const {
  if (sorted_.empty()) return 0.0;
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  // Nearest rank: ceil(q * n) as a 1-based rank.
  const double scaled = q * static_cast<double>(sorted_.size());
  std::size_t rank = static_cast<std::size_t>(scaled);
  if (static_cast<double>(rank) < scaled) ++rank;
  if (rank == 0) rank = 1;
  return sorted_[rank - 1];
}

double StreamSummary::mean() const {
  if (sorted_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : sorted_) sum += v;
  return sum / static_cast<double>(sorted_.size());
}

const StreamSummary* GroupedSummary::find(const std::string& key) const {
  const auto it = groups.find(key);
  return it == groups.end() ? nullptr : &it->second;
}

std::vector<FootprintSample> footprint_snapshot(
    const std::vector<trace::TraceRecord>& records, PageNumber page) {
  std::vector<FootprintSample> out;
  for (const auto& r : records) {
    if (addr::page_number(r.address) == page) {
      out.push_back(FootprintSample{r.arrival, addr::block_in_page(r.address)});
    }
  }
  return out;
}

bool hottest_page(const std::vector<trace::TraceRecord>& records,
                  PageNumber& page_out) {
  std::unordered_map<PageNumber, std::uint64_t> counts;
  for (const auto& r : records) ++counts[addr::page_number(r.address)];
  if (counts.empty()) return false;
  PageNumber best = 0;
  std::uint64_t best_count = 0;
  for (const auto& [page, count] : counts) {
    if (count > best_count || (count == best_count && page < best)) {
      best = page;
      best_count = count;
    }
  }
  page_out = best;
  return true;
}

OverlapResult overlap_rate(const std::vector<trace::TraceRecord>& records,
                           std::uint64_t window) {
  // Group the per-page access sequences (block order preserved).
  std::unordered_map<PageNumber, std::vector<int>> sequences;
  for (const auto& r : records) {
    sequences[addr::page_number(r.address)].push_back(
        addr::block_in_page(r.address));
  }

  OverlapResult result;
  double overlap_sum = 0.0;
  for (auto& [page, seq] : sequences) {
    // Window size: the page's distinct-block count, per the Fig. 3 method
    // ("we determined the window size by counting the number of accessed
    // blocks in a page"), unless the caller fixed one.
    std::uint64_t w = window;
    if (w == 0) {
      std::unordered_set<int> distinct(seq.begin(), seq.end());
      w = distinct.size();
    }
    if (w == 0 || seq.size() < 2 * w) continue;  // needs two full windows

    ++result.pages_analyzed;
    PageBitmap prev;
    bool have_prev = false;
    for (std::size_t start = 0; start + w <= seq.size(); start += w) {
      PageBitmap cur;
      for (std::size_t i = start; i < start + w; ++i) cur.set(seq[i]);
      if (have_prev) {
        // |cur ∩ prev| / |cur|, exactly the paper's metric.
        overlap_sum += static_cast<double>(cur.common_with(prev)) /
                       static_cast<double>(cur.popcount());
        ++result.windows_compared;
      }
      prev = cur;
      have_prev = true;
    }
  }
  if (result.windows_compared > 0) {
    result.average_overlap =
        overlap_sum / static_cast<double>(result.windows_compared);
  }
  return result;
}

std::map<PageNumber, PageBitmap> page_bitmaps(
    const std::vector<trace::TraceRecord>& records) {
  std::map<PageNumber, PageBitmap> bitmaps;
  for (const auto& r : records) {
    bitmaps[addr::page_number(r.address)].set(addr::block_in_page(r.address));
  }
  return bitmaps;
}

std::vector<double> learnable_neighbor_fraction(
    const std::vector<trace::TraceRecord>& records,
    const std::vector<std::uint64_t>& distance_thresholds, int max_bit_diff) {
  const auto bitmaps = page_bitmaps(records);
  // Flatten to sorted arrays for windowed neighbor scans.
  std::vector<PageNumber> pages;
  std::vector<PageBitmap> bms;
  pages.reserve(bitmaps.size());
  for (const auto& [page, bm] : bitmaps) {
    pages.push_back(page);
    bms.push_back(bm);
  }

  std::vector<double> fractions;
  fractions.reserve(distance_thresholds.size());
  for (const std::uint64_t dist : distance_thresholds) {
    std::uint64_t learnable = 0;
    for (std::size_t i = 0; i < pages.size(); ++i) {
      bool found = false;
      // Scan forward and backward while within the page-number distance.
      for (std::size_t j = i + 1; j < pages.size() && pages[j] - pages[i] <= dist;
           ++j) {
        if (bms[i].hamming_distance(bms[j]) <= max_bit_diff) {
          found = true;
          break;
        }
      }
      if (!found) {
        for (std::size_t j = i; j-- > 0 && pages[i] - pages[j] <= dist;) {
          if (bms[i].hamming_distance(bms[j]) <= max_bit_diff) {
            found = true;
            break;
          }
        }
      }
      learnable += found ? 1 : 0;
    }
    fractions.push_back(pages.empty() ? 0.0
                                      : static_cast<double>(learnable) /
                                            static_cast<double>(pages.size()));
  }
  return fractions;
}

}  // namespace planaria::analysis
