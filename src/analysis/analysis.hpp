// Trace analysis tools behind the paper's observation figures.
//
//  * footprint_snapshot()    — Fig. 2: the (arrival time, block) scatter of
//    one page, demonstrating stable snapshot membership, long reuse distance,
//    and shuffled intra-snapshot order.
//  * overlap_rate()          — Fig. 3/4 methodology: per page, the accessed-
//    block set of consecutive equal-size windows is compared; the overlap
//    rate |cur ∩ prev| / |cur| averaged over windows and pages validates
//    Observation 1 (paper: > 80% on every app).
//  * learnable_neighbor_fraction() — Fig. 5: the fraction of pages that have
//    at least one page within a page-number distance threshold whose final
//    access bitmap differs by at most `max_bit_diff` bits (Observation 2;
//    paper: 26.95% average at distance 4, 39.26% at 64).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/bitmap.hpp"
#include "common/types.hpp"
#include "trace/record.hpp"

namespace planaria::analysis {

struct FootprintSample {
  Cycle arrival;
  int block;  ///< 0..63 within the page
};

/// Access scatter for `page`; empty if the page never appears.
std::vector<FootprintSample> footprint_snapshot(
    const std::vector<trace::TraceRecord>& records, PageNumber page);

/// The page with the most accesses (a good Fig. 2 subject). Returns false if
/// the trace is empty.
bool hottest_page(const std::vector<trace::TraceRecord>& records,
                  PageNumber& page_out);

struct OverlapResult {
  double average_overlap = 0.0;  ///< mean over all windows of all pages
  std::uint64_t windows_compared = 0;
  std::uint64_t pages_analyzed = 0;
};

/// Window methodology of Fig. 3. `window` is the number of accesses per
/// window for each page; the paper sizes it from the page's typical accessed
/// block count, so `window == 0` means "per page, use that page's distinct
/// block count".
OverlapResult overlap_rate(const std::vector<trace::TraceRecord>& records,
                           std::uint64_t window = 0);

/// Final access bitmap (64 blocks) of every page in the trace.
std::map<PageNumber, PageBitmap> page_bitmaps(
    const std::vector<trace::TraceRecord>& records);

/// Fraction of pages with at least one learnable neighbor for each distance
/// threshold in `distance_thresholds` (bit-difference floor `max_bit_diff`,
/// paper default 4).
std::vector<double> learnable_neighbor_fraction(
    const std::vector<trace::TraceRecord>& records,
    const std::vector<std::uint64_t>& distance_thresholds,
    int max_bit_diff = 4);

}  // namespace planaria::analysis
