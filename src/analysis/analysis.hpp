// Trace analysis tools behind the paper's observation figures.
//
//  * footprint_snapshot()    — Fig. 2: the (arrival time, block) scatter of
//    one page, demonstrating stable snapshot membership, long reuse distance,
//    and shuffled intra-snapshot order.
//  * overlap_rate()          — Fig. 3/4 methodology: per page, the accessed-
//    block set of consecutive equal-size windows is compared; the overlap
//    rate |cur ∩ prev| / |cur| averaged over windows and pages validates
//    Observation 1 (paper: > 80% on every app).
//  * learnable_neighbor_fraction() — Fig. 5: the fraction of pages that have
//    at least one page within a page-number distance threshold whose final
//    access bitmap differs by at most `max_bit_diff` bits (Observation 2;
//    paper: 26.95% average at distance 4, 39.26% at 64).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bitmap.hpp"
#include "common/types.hpp"
#include "trace/record.hpp"

namespace planaria::analysis {

/// Exact online summary of one metric stream (AMAT, IPC, hit rate ... one
/// value per finished serving session). Values are kept sorted, so every
/// observable — quantiles by nearest rank, the mean summed in ascending
/// order, min/max — is a pure function of the value *set*, independent of
/// insertion order. That insertion-order independence is load-bearing: the
/// serving loop folds sessions in as they finish, while a resumed server
/// rebuilds the same summary from checkpointed results in session-id order,
/// and the two must compare equal bit for bit (operator== included).
/// Insertion is O(n); fleets are thousands of sessions, not millions.
class StreamSummary {
 public:
  void add(double value);
  std::uint64_t count() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }
  /// Nearest-rank quantile (q in [0, 1]); 0.0 on an empty summary.
  double quantile(double q) const;
  /// Mean accumulated in ascending value order (deterministic bytes).
  double mean() const;
  double min() const { return sorted_.empty() ? 0.0 : sorted_.front(); }
  double max() const { return sorted_.empty() ? 0.0 : sorted_.back(); }
  friend bool operator==(const StreamSummary&, const StreamSummary&) = default;

 private:
  std::vector<double> sorted_;
};

/// StreamSummary keyed by a grouping label (app name, device class). The
/// serve layer maintains one per reported metric and surfaces rolling
/// per-app / per-device percentiles from live fleets.
struct GroupedSummary {
  std::map<std::string, StreamSummary> groups;
  void add(const std::string& key, double value) { groups[key].add(value); }
  const StreamSummary* find(const std::string& key) const;
  friend bool operator==(const GroupedSummary&, const GroupedSummary&) = default;
};

struct FootprintSample {
  Cycle arrival;
  int block;  ///< 0..63 within the page
};

/// Access scatter for `page`; empty if the page never appears.
std::vector<FootprintSample> footprint_snapshot(
    const std::vector<trace::TraceRecord>& records, PageNumber page);

/// The page with the most accesses (a good Fig. 2 subject). Returns false if
/// the trace is empty.
bool hottest_page(const std::vector<trace::TraceRecord>& records,
                  PageNumber& page_out);

struct OverlapResult {
  double average_overlap = 0.0;  ///< mean over all windows of all pages
  std::uint64_t windows_compared = 0;
  std::uint64_t pages_analyzed = 0;
};

/// Window methodology of Fig. 3. `window` is the number of accesses per
/// window for each page; the paper sizes it from the page's typical accessed
/// block count, so `window == 0` means "per page, use that page's distinct
/// block count".
OverlapResult overlap_rate(const std::vector<trace::TraceRecord>& records,
                           std::uint64_t window = 0);

/// Final access bitmap (64 blocks) of every page in the trace.
std::map<PageNumber, PageBitmap> page_bitmaps(
    const std::vector<trace::TraceRecord>& records);

/// Fraction of pages with at least one learnable neighbor for each distance
/// threshold in `distance_thresholds` (bit-difference floor `max_bit_diff`,
/// paper default 4).
std::vector<double> learnable_neighbor_fraction(
    const std::vector<trace::TraceRecord>& records,
    const std::vector<std::uint64_t>& distance_thresholds,
    int max_bit_diff = 4);

}  // namespace planaria::analysis
